(* Distributed port bridges: wire format roundtrips, socketpair and TCP
   bridges with real connectors behind them. *)

module Wire = Preo_dist.Wire
module Bridge = Preo_dist.Bridge

open Preo_support
open Preo_automata
open Preo_runtime

let v = Vertex.fresh
let prim = Preo_reo.Prim.build

(* --- wire format ------------------------------------------------------------ *)

let roundtrip_value x =
  let buf = Buffer.create 64 in
  Wire.encode_value buf x;
  let pos = ref 0 in
  let y = Wire.decode_value (Buffer.to_bytes buf) ~pos in
  Alcotest.(check bool)
    (Format.asprintf "roundtrip %a" Value.pp x)
    true (Value.equal x y);
  Alcotest.(check int) "consumed all" (Buffer.length buf) !pos

let wire_values () =
  List.iter roundtrip_value
    [
      Value.unit;
      Value.bool true;
      Value.bool false;
      Value.int 0;
      Value.int (-12345678901);
      Value.int max_int;
      Value.float 3.14159;
      Value.float (-0.0);
      Value.float infinity;
      Value.str "";
      Value.str "hello \x00 world";
      Value.pair (Value.int 1) (Value.str "x");
      Value.list [ Value.int 1; Value.list [ Value.unit ]; Value.float 2.5 ];
      Value.float_array [| 1.0; -2.5; 1e300 |];
      Value.float_array [||];
    ]

let qcheck_wire =
  let open QCheck in
  let rec gen_value depth =
    let open Gen in
    if depth = 0 then
      oneof
        [
          return Value.unit;
          map Value.bool bool;
          map Value.int int;
          map Value.float (float_range (-1e6) 1e6);
          map Value.str string_small;
        ]
    else
      oneof
        [
          map Value.int int;
          map2 Value.pair (gen_value (depth - 1)) (gen_value (depth - 1));
          map Value.list (list_size (int_range 0 4) (gen_value (depth - 1)));
          map
            (fun l -> Value.float_array (Array.of_list l))
            (list_size (int_range 0 6) (float_range (-1e9) 1e9));
        ]
  in
  [
    QCheck.Test.make ~name:"wire roundtrip (random values)" ~count:300
      (QCheck.make ~print:Value.to_string (gen_value 3))
      (fun x ->
        let buf = Buffer.create 64 in
        Wire.encode_value buf x;
        let pos = ref 0 in
        Value.equal x (Wire.decode_value (Buffer.to_bytes buf) ~pos));
  ]

(* --- socketpair bridge -------------------------------------------------------- *)

let bridged_fifo_over_socketpair () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim (Preo_reo.Prim.Fifo_n 4) ~tails:[ a ] ~heads:[ b ] ]
  in
  let s_out, c_out = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let s_in, c_in = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server_out = Bridge.serve_outport (Connector.outport conn a) s_out in
  let server_in = Bridge.serve_inport (Connector.inport conn b) s_in in
  let rout = Bridge.remote_outport c_out in
  let rin = Bridge.remote_inport c_in in
  let got = ref [] in
  Task.run_all
    [
      (fun () ->
        for i = 1 to 20 do
          Bridge.send rout (Value.int i)
        done);
      (fun () ->
        for _ = 1 to 20 do
          got := Value.to_int (Bridge.recv rin) :: !got
        done);
    ];
  Alcotest.(check (list int)) "fifo order over the wire"
    (List.init 20 (fun i -> i + 1))
    (List.rev !got);
  Bridge.close_remote c_out;
  Bridge.close_remote c_in;
  Thread.join server_out;
  Thread.join server_in;
  Connector.poison conn "done"

let bridged_sync_blocks_until_partner () =
  (* A sync channel over two bridges: the remote send must not complete
     before the remote receive is in flight. *)
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] ]
  in
  let s_out, c_out = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let s_in, c_in = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let _srv1 = Bridge.serve_outport (Connector.outport conn a) s_out in
  let _srv2 = Bridge.serve_inport (Connector.inport conn b) s_in in
  let rout = Bridge.remote_outport c_out in
  let rin = Bridge.remote_inport c_in in
  let send_done = Atomic.make false in
  let sender =
    Task.spawn (fun () ->
        Bridge.send rout (Value.str "x");
        Atomic.set send_done true)
  in
  Thread.delay 0.05;
  Alcotest.(check bool) "send still blocked" false (Atomic.get send_done);
  Alcotest.(check string) "received" "x" (Value.to_str (Bridge.recv rin));
  Task.join sender;
  Alcotest.(check bool) "send completed" true (Atomic.get send_done);
  Bridge.close_remote c_out;
  Bridge.close_remote c_in;
  Connector.poison conn "done"

let bridged_over_tcp () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] ]
  in
  (* port 0: the kernel assigns a free port, so parallel test runs cannot
     collide on a hardcoded number *)
  let listener = Bridge.listen_local ~port:0 () in
  let port = Bridge.bound_port listener in
  let acceptor =
    Task.spawn (fun () ->
        let fd1 = Bridge.accept_one listener in
        ignore (Bridge.serve_outport (Connector.outport conn a) fd1);
        let fd2 = Bridge.accept_one listener in
        ignore (Bridge.serve_inport (Connector.inport conn b) fd2))
  in
  let c1 = Bridge.connect_local ~retries:3 ~port () in
  let c2 = Bridge.connect_local ~retries:3 ~port () in
  Task.join acceptor;
  let rout = Bridge.remote_outport c1 and rin = Bridge.remote_inport c2 in
  Bridge.send rout (Value.pair (Value.int 1) (Value.str "tcp"));
  let got = Bridge.recv rin in
  Alcotest.(check bool) "value across TCP" true
    (Value.equal got (Value.pair (Value.int 1) (Value.str "tcp")));
  Bridge.close_remote c1;
  Bridge.close_remote c2;
  Unix.close listener;
  Connector.poison conn "done"

let poisoned_connector_reported_remotely () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] ]
  in
  let s_out, c_out = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let _srv = Bridge.serve_outport (Connector.outport conn a) s_out in
  let rout = Bridge.remote_outport c_out in
  let blocked =
    Task.spawn (fun () ->
        match Bridge.send rout Value.unit with
        | exception Engine.Poisoned msg ->
          (* the wire prefix must be stripped: a re-bridge hop would
             otherwise stack "poisoned: " prefixes *)
          Alcotest.(check string) "original reason, no prefix" "remote test" msg
        | () -> Alcotest.fail "expected remote poisoning")
  in
  Thread.delay 0.05;
  Connector.poison conn "remote test";
  Task.join blocked;
  Bridge.close_remote c_out

(* --- fault paths --------------------------------------------------------------- *)

(* A recoverable error response (wrong-direction request) must not end the
   serving session: the next well-formed request on the same descriptor
   still gets served. *)
let serve_survives_recoverable_error () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim (Preo_reo.Prim.Fifo_n 2) ~tails:[ a ] ~heads:[ b ] ]
  in
  Port.send (Connector.outport conn a) (Value.int 7);
  let s_in, c_in = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let srv = Bridge.serve_inport (Connector.inport conn b) s_in in
  (* wrong direction first: an inport bridge cannot take sends *)
  Wire.write_request c_in (Wire.Req_send (Value.int 1));
  (match Wire.read_response c_in with
   | Wire.Resp_error msg ->
     Alcotest.(check bool) "direction error" true
       (String.length msg > 0 && not (String.starts_with ~prefix:"poisoned:" msg))
   | _ -> Alcotest.fail "expected an error response");
  (* same session, now a correct request *)
  Wire.write_request c_in Wire.Req_recv;
  (match Wire.read_response c_in with
   | Wire.Resp_value x ->
     Alcotest.(check int) "served after error" 7 (Value.to_int x)
   | _ -> Alcotest.fail "session should have survived the error");
  Bridge.close_remote c_in;
  Thread.join srv;
  Connector.poison conn "done"

(* Killing the peer mid-RPC must surface as Bridge_down, not a hung thread
   or an unhandled Unix_error. *)
let peer_killed_mid_rpc () =
  let s, c = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rin = Bridge.remote_inport c in
  let t0 = Unix.gettimeofday () in
  let killer =
    Task.spawn (fun () ->
        Thread.delay 0.05;
        Unix.close s)
  in
  (match Bridge.recv rin with
   | exception Bridge.Bridge_down _ -> ()
   | _ -> Alcotest.fail "expected Bridge_down");
  Task.join killer;
  Alcotest.(check bool) "failed promptly" true (Unix.gettimeofday () -. t0 < 2.0);
  try Unix.close c with _ -> ()

(* A peer that is alive but never answers must trip the RPC timeout. *)
let rpc_timeout_expires () =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] ]
  in
  let s_in, c_in = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* serving a recv on a sync with no sender: blocks indefinitely *)
  let _srv = Bridge.serve_inport (Connector.inport conn b) s_in in
  let rin = Bridge.remote_inport ~timeout:0.1 c_in in
  let t0 = Unix.gettimeofday () in
  (match Bridge.recv rin with
   | exception Bridge.Bridge_down msg ->
     Alcotest.(check bool) "timeout message" true
       (String.length msg > 0)
   | _ -> Alcotest.fail "expected Bridge_down on timeout");
  let waited = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool) "within 2x the timeout" true (waited < 0.5);
  Connector.poison conn "done";
  (try Unix.close c_in with _ -> ())

(* Frame reads must restart on EINTR instead of corrupting the framing: an
   interval timer peppers the process with SIGALRM while frames trickle in
   byte by byte. *)
let eintr_mid_frame () =
  let old = Sys.signal Sys.sigalrm (Sys.Signal_handle (fun _ -> ())) in
  let it =
    Unix.setitimer Unix.ITIMER_REAL
      { Unix.it_interval = 0.002; it_value = 0.002 }
  in
  ignore it;
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Unix.setitimer Unix.ITIMER_REAL
           { Unix.it_interval = 0.0; it_value = 0.0 });
      Sys.set_signal Sys.sigalrm old)
    (fun () ->
      let rd, wr = Unix.pipe () in
      let payload = Value.list [ Value.int 42; Value.str "eintr" ] in
      let buf = Buffer.create 64 in
      Wire.encode_value buf payload;
      let frame = Buffer.create 64 in
      Buffer.add_char frame 'V';
      Buffer.add_buffer frame buf;
      let writer =
        Task.spawn (fun () ->
            (* one byte at a time, slowly: reads in between see partial
               frames and get interrupted by the timer *)
            let header = Buffer.create 8 in
            let body = Buffer.to_bytes frame in
            let n = Bytes.length body in
            for shift = 0 to 7 do
              Buffer.add_char header
                (Char.chr ((n lsr (8 * shift)) land 0xFF))
            done;
            let all = Bytes.cat (Buffer.to_bytes header) body in
            let rec put ch =
              (* the writer gets peppered by the same timer: restart its
                 own syscalls too *)
              match Unix.write wr (Bytes.make 1 ch) 0 1 with
              | _ -> ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> put ch
            in
            Bytes.iter
              (fun ch ->
                put ch;
                try Thread.delay 0.003 with _ -> ())
              all)
      in
      let got = Wire.read_response rd in
      Task.join writer;
      (match got with
       | Wire.Resp_value x ->
         Alcotest.(check bool) "payload intact" true (Value.equal x payload)
       | _ -> Alcotest.fail "expected the value response");
      Unix.close rd;
      Unix.close wr)

(* --- malformed-frame hardening ------------------------------------------------- *)

let decode_must_fail name bytes =
  let pos = ref 0 in
  match Wire.decode_value bytes ~pos with
  | exception Failure msg ->
    Alcotest.(check bool)
      (name ^ ": wire-prefixed failure")
      true
      (String.starts_with ~prefix:"wire:" msg)
  | _ -> Alcotest.fail (name ^ ": malformed frame decoded successfully")

let malformed_frames_rejected () =
  let le_int64 n =
    let b = Bytes.create 8 in
    for i = 0 to 7 do
      Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical n (8 * i)) 0xFFL)))
    done;
    b
  in
  let tagged tag len = Bytes.cat (Bytes.make 1 tag) (le_int64 len) in
  decode_must_fail "negative string length" (tagged 's' (-4L));
  decode_must_fail "over-frame string length" (tagged 's' 1_000_000L);
  decode_must_fail "negative list length" (tagged 'l' (-1L));
  decode_must_fail "over-frame list length" (tagged 'l' 1_000_000_000L);
  decode_must_fail "negative float-array length" (tagged 'a' (-8L));
  decode_must_fail "huge float-array length"
    (tagged 'a' 1_099_511_627_776L (* would be an 8TB allocation *));
  decode_must_fail "truncated int" (Bytes.of_string "i\x01\x02");
  decode_must_fail "truncated pair" (Bytes.of_string "pi");
  decode_must_fail "empty frame" Bytes.empty;
  decode_must_fail "bad tag" (Bytes.of_string "z")

let qcheck_decode_fuzz =
  let open QCheck in
  [
    QCheck.Test.make ~name:"decode random frames: wire error or clean value"
      ~count:2000
      (QCheck.make
         ~print:(fun s -> Printf.sprintf "%S" s)
         Gen.(string_size ~gen:char (int_range 0 64)))
      (fun s ->
        let pos = ref 0 in
        match Wire.decode_value (Bytes.of_string s) ~pos with
        | _ -> true
        | exception Failure msg -> String.starts_with ~prefix:"wire:" msg
        (* anything else (Invalid_argument, Out_of_memory, ...) fails *));
  ]

let tests =
  [
    ("wire value roundtrips", `Quick, wire_values);
    ("bridged fifo over socketpair", `Quick, bridged_fifo_over_socketpair);
    ("bridged sync blocks until partner", `Quick, bridged_sync_blocks_until_partner);
    ("bridged over TCP", `Quick, bridged_over_tcp);
    ("remote poisoning surfaces", `Quick, poisoned_connector_reported_remotely);
    ("serve survives recoverable error", `Quick, serve_survives_recoverable_error);
    ("peer killed mid-RPC raises Bridge_down", `Quick, peer_killed_mid_rpc);
    ("RPC timeout expires as Bridge_down", `Quick, rpc_timeout_expires);
    ("EINTR mid-frame does not corrupt framing", `Quick, eintr_mid_frame);
    ("malformed frames rejected", `Quick, malformed_frames_rejected);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_wire
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_decode_fuzz
