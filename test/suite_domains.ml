(* Multicore runtime: domain-pool lifecycle and cross-domain connector
   traffic. Every test here forces [~domains:2] (or a 2-worker pool)
   explicitly, so the cross-domain paths are exercised even on a
   single-core testbed — OCaml honors explicit domain requests regardless
   of [recommended_domain_count]. *)

open Preo

module P = Preo_support.Pool

(* --- Pool lifecycle ----------------------------------------------------- *)

let pool_spawn_join_reuse () =
  let p = P.create ~domains:2 () in
  Alcotest.(check int) "two workers" 2 (P.size p);
  (* First batch: jobs really run, on a domain that can differ from ours. *)
  let hits = Atomic.make 0 in
  let doms = Atomic.make [] in
  let batch () =
    List.init 8 (fun _ ->
        P.spawn p (fun () ->
            let d = (Domain.self () :> int) in
            let rec add () =
              let old = Atomic.get doms in
              if not (Atomic.compare_and_set doms old (d :: old)) then add ()
            in
            add ();
            Atomic.incr hits))
  in
  List.iter P.await (batch ());
  Alcotest.(check int) "first batch ran" 8 (Atomic.get hits);
  (* Reuse: the same workers accept a second batch. *)
  List.iter P.await (batch ());
  Alcotest.(check int) "second batch ran on the same pool" 16 (Atomic.get hits);
  let distinct = List.sort_uniq compare (Atomic.get doms) in
  Alcotest.(check bool) "jobs spread over more than one domain" true
    (List.length distinct >= 2);
  P.shutdown p;
  Alcotest.check_raises "submit after shutdown raises"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      P.submit p (fun () -> ()))

exception Boom

let pool_exception_propagation () =
  let p = P.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> P.shutdown p) (fun () ->
      let ok = P.spawn p (fun () -> ()) in
      let bad = P.spawn p (fun () -> raise Boom) in
      Alcotest.(check bool) "clean job reports no failure" true
        (P.result ok = None);
      (match P.result bad with
       | Some Boom -> ()
       | Some e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e)
       | None -> Alcotest.fail "failure was swallowed");
      (* await re-raises, and a failed job doesn't poison its worker. *)
      (try
         P.await bad;
         Alcotest.fail "await did not re-raise"
       with Boom -> ());
      let again = P.spawn p (fun () -> ()) in
      Alcotest.(check bool) "worker survives a failed job" true
        (P.result again = None))

let pool_ensure_grows () =
  let p = P.create ~domains:1 () in
  Fun.protect ~finally:(fun () -> P.shutdown p) (fun () ->
      Alcotest.(check int) "starts at one" 1 (P.size p);
      P.ensure p 3;
      Alcotest.(check int) "grown to three" 3 (P.size p);
      P.ensure p 2;
      Alcotest.(check int) "never shrinks" 3 (P.size p);
      let ran = Atomic.make 0 in
      List.iter P.await
        (List.init 6 (fun i ->
             P.spawn ~worker:i p (fun () -> Atomic.incr ran)));
      Alcotest.(check int) "pinned jobs all ran" 6 (Atomic.get ran))

(* --- Cross-domain connector traffic ------------------------------------- *)

let with_inst ?(config = Config.new_partitioned) ?(n = 4) name f =
  let e = Preo_connectors.Catalog.find name in
  let inst =
    instantiate ~config ~domains:2
      (Preo_connectors.Catalog.compiled e)
      ~lengths:(e.Preo_connectors.Catalog.lengths n)
  in
  Fun.protect ~finally:(fun () -> shutdown inst) (fun () -> f n inst)

(* sequencer: the round-robin rotation only completes if sends landing from
   pooled (cross-domain) tasks wake the right parked receivers. *)
let sequencer_cross_domain_storm () =
  with_inst "sequencer" (fun n inst ->
      (match sched inst with
       | Task.Domains _ -> ()
       | Task.Threads -> Alcotest.fail "expected a pooled scheduling policy");
      let ins = inports inst "hd" in
      let order = ref [] in
      Task.run_all ~on:(sched inst)
        [
          (fun () ->
            for _round = 1 to 50 do
              Array.iteri
                (fun i p ->
                  ignore (Port.recv p);
                  order := i :: !order)
                ins
            done);
        ];
      Alcotest.(check (list int))
        "rotation intact across domains"
        (List.concat (List.init 50 (fun _ -> List.init n Fun.id)))
        (List.rev !order))

(* token_ring: n pooled station tasks circulate the token; the observed
   order must be a strict rotation, which a lost cross-domain wakeup or a
   torn counter would break. *)
let token_ring_cross_domain_storm () =
  with_inst "token_ring" (fun n inst ->
      let outs = outports inst "tl" in
      let ins = inports inst "hd" in
      let rounds = 50 in
      let order = ref [] in
      let lock = Mutex.create () in
      Task.run_all ~on:(sched inst)
        (List.init n (fun i -> fun () ->
             for _ = 1 to rounds do
               ignore (Port.recv ins.(i));
               Mutex.lock lock;
               order := i :: !order;
               Mutex.unlock lock;
               Port.send outs.(i) Value.unit
             done));
      Alcotest.(check (list int))
        "ring order intact across domains"
        (List.concat (List.init rounds (fun _ -> List.init n Fun.id)))
        (List.rev !order))

(* Targeted wakeups stay precise when sender and receiver sit in different
   domains: a parked receiver is woken by a targeted signal, never a
   spurious one, and no broadcast happens before close. *)
let targeted_wakeups_across_domains () =
  let a = Preo_automata.Vertex.fresh "da"
  and b = Preo_automata.Vertex.fresh "db" in
  let auto = Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] in
  let conn =
    Connector.create ~config:Config.new_jit ~domains:2 ~sources:[| a |]
      ~sinks:[| b |] [ auto ]
  in
  Alcotest.(check int) "built for two domains" 2 (Connector.domains conn);
  let got = ref 0 in
  let t =
    Task.spawn ~on:(Connector.sched conn) (fun () ->
        got := Value.to_int (Port.recv (Connector.inport conn b)))
  in
  Thread.delay 0.05;
  (* receiver parked in its (possibly remote) domain *)
  Port.send (Connector.outport conn a) (Value.int 7);
  Task.join t;
  let st = Connector.stats conn in
  Alcotest.(check int) "value crossed domains" 7 !got;
  Alcotest.(check int) "stats report the domain target" 2
    st.Connector.st_domains;
  Alcotest.(check bool) "receiver parked" true
    (st.Connector.st_cond_waits >= 1);
  Alcotest.(check bool) "targeted wake issued" true
    (st.Connector.st_wakes_targeted >= 1);
  Alcotest.(check int) "zero spurious wakes" 0 st.Connector.st_wakes_spurious;
  Alcotest.(check int) "no broadcast before close" 0
    st.Connector.st_wakes_broadcast;
  Connector.close conn

(* Race smoke for the atomic engine counters: two domains hammer
   [Connector.stats] while traffic runs. Monotonicity of the step counter
   across lock-free cross-domain reads is the observable; a plain (non
   [Atomic.t]) int field would not guarantee it under the OCaml memory
   model. *)
let stats_race_smoke () =
  with_inst "broadcast_fifo" (fun n inst ->
      let conn = connector inst in
      let out = (outports inst "tl").(0) in
      let ins = inports inst "hd" in
      let rounds = 100 in
      let stop = Atomic.make false in
      let violated = Atomic.make false in
      let reader () =
        let last = ref 0 in
        while not (Atomic.get stop) do
          let st = Connector.stats conn in
          if st.Connector.st_steps < !last then Atomic.set violated true;
          last := st.Connector.st_steps;
          if st.Connector.st_cond_waits < 0 || st.Connector.st_peer_kicks < 0
          then Atomic.set violated true
        done
      in
      let readers =
        [ Task.spawn ~on:(sched inst) reader; Task.spawn reader ]
      in
      Task.run_all ~on:(sched inst)
        ((fun () ->
           for r = 1 to rounds do
             Port.send out (Value.int r)
           done)
        :: List.init n (fun i -> fun () ->
               for _ = 1 to rounds do
                 ignore (Port.recv ins.(i))
               done));
      Atomic.set stop true;
      List.iter Task.join readers;
      Alcotest.(check bool) "counters monotone under concurrent readers" false
        (Atomic.get violated);
      Alcotest.(check bool) "traffic completed" true
        (Connector.steps conn >= rounds))

let tests =
  [
    ("pool spawn/join/reuse", `Quick, pool_spawn_join_reuse);
    ("pool exception propagation", `Quick, pool_exception_propagation);
    ("pool ensure grows, never shrinks", `Quick, pool_ensure_grows);
    ("sequencer cross-domain storm", `Quick, sequencer_cross_domain_storm);
    ("token-ring cross-domain storm", `Quick, token_ring_cross_domain_storm);
    ("targeted wakeups across domains", `Quick, targeted_wakeups_across_domains);
    ("stats race smoke", `Quick, stats_race_smoke);
  ]
