(* Elastic connectors: run-time grow/shrink of a live instance's parameter
   groups. Covers the splice pipeline end to end — quiescence gating,
   state retention of kept mediums, targeted poison of a leaver's parked
   operations, churn storms, the splice-vs-rebuild boundary on partitioned
   connectors, and behavioural equivalence of a spliced product with a
   fresh instantiation at the same size. *)

open Preo
module Composer = Preo_runtime.Composer
module Automaton = Preo_automata.Automaton
module Product = Preo_automata.Product
module Iset = Preo_support.Iset
module Bisim = Preo_verify.Bisim
module Catalog = Preo_connectors.Catalog

let bcast_src =
  {|NBcastFifo(tl;hd[]) =
  Repl(tl;x[1..#hd])
  mult prod (i:1..#hd) Fifo1(x[i];hd[i])|}

let seq_src =
  {|NSequencer(;hd[]) =
  prod (i:1..#hd) Repl2(v[i];hd[i],u[i])
  mult prod (i:1..#hd-1) Fifo1(u[i];v[i+1])
  mult Fifo1Full(u[#hd];v[1])|}

let with_inst ?config ?domains ~lengths src name f =
  let c = compile ~source:src ~name in
  let inst = instantiate ?config ?domains c ~lengths in
  Fun.protect ~finally:(fun () -> shutdown inst) (fun () -> f inst)

(* --- Basic grow/shrink --------------------------------------------------- *)

let non_elastic_rejected () =
  with_inst ~config:Config.existing ~lengths:[ ("hd", 2) ] bcast_src
    "NBcastFifo" (fun inst ->
      (match grow inst "hd" with
       | exception Error _ -> ()
       | _ -> Alcotest.fail "existing approach must not be elastic");
      match shrink inst "hd" with
      | exception Error _ -> ()
      | _ -> Alcotest.fail "existing approach must not be elastic")

let grow_broadcast_keeps_buffered_data () =
  with_inst ~lengths:[ ("hd", 2) ] bcast_src "NBcastFifo" (fun inst ->
      let tl = (outports inst "tl").(0) in
      (* Park a datum in both per-consumer fifos, then grow: the kept
         fifos must carry their buffered values across the splice. *)
      Port.send tl (Value.int 7);
      let idx = grow inst "hd" in
      Alcotest.(check int) "new slot is 3" 3 idx;
      Alcotest.(check int) "group resized" 3 (group_size inst "hd");
      Alcotest.(check int) "one splice" 1 (Connector.splices (connector inst));
      Alcotest.(check int) "pre-splice datum survives (slot 1)" 7
        (Value.to_int (Port.recv (inport_at inst "hd" 1)));
      Alcotest.(check int) "pre-splice datum survives (slot 2)" 7
        (Value.to_int (Port.recv (inport_at inst "hd" 2)));
      (* The grown slot participates from the next broadcast on. *)
      let got = Array.make 3 0 in
      Task.run_all ~on:(sched inst)
        ((fun () -> Port.send tl (Value.int 9))
        :: List.init 3 (fun k -> fun () ->
               got.(k) <-
                 Value.to_int (Port.recv (inport_at inst "hd" (k + 1)))));
      Alcotest.(check (list int)) "all three slots served" [ 9; 9; 9 ]
        (Array.to_list got))

let shrink_broadcast_last_slot () =
  with_inst ~lengths:[ ("hd", 3) ] bcast_src "NBcastFifo" (fun inst ->
      let tl = (outports inst "tl").(0) in
      shrink inst "hd";
      Alcotest.(check int) "group resized" 2 (group_size inst "hd");
      let got = Array.make 2 0 in
      Task.run_all ~on:(sched inst)
        ((fun () -> Port.send tl (Value.int 5))
        :: List.init 2 (fun k -> fun () ->
               got.(k) <-
                 Value.to_int (Port.recv (inport_at inst "hd" (k + 1)))));
      Alcotest.(check (list int)) "remaining slots served" [ 5; 5 ]
        (Array.to_list got))

(* --- Quiescence gating on the sequencer ring ----------------------------- *)

let recv_round inst n =
  for i = 1 to n do
    ignore (Port.recv (inport_at inst "hd" i))
  done

let grow_sequencer_round_robin () =
  with_inst ~lengths:[ ("hd", 2) ] seq_src "NSequencer" (fun inst ->
      (* Token starts in the ring-closing full fifo: quiescent, grow
         succeeds untouched. *)
      recv_round inst 2;
      let idx = grow inst "hd" in
      Alcotest.(check int) "slot 3 added" 3 idx;
      (* Strict round-robin continues over the widened ring. *)
      recv_round inst 3;
      recv_round inst 3;
      shrink inst "hd";
      recv_round inst 2)

let grow_sequencer_mid_round_not_quiescent () =
  with_inst ~lengths:[ ("hd", 2) ] seq_src "NSequencer" (fun inst ->
      (* After one grant the token sits mid-ring: the ring-closing fifo is
         empty, not label-bisimilar to its full initial state. *)
      ignore (Port.recv (inport_at inst "hd" 1));
      (match grow inst "hd" with
       | exception Composer.Not_quiescent _ -> ()
       | _ -> Alcotest.fail "mid-round grow must report Not_quiescent");
      Alcotest.(check int) "rolled back" 2 (group_size inst "hd");
      (* Completing the round returns the token to the full fifo; the
         retried grow now succeeds and the grant order is preserved. *)
      ignore (Port.recv (inport_at inst "hd" 2));
      Alcotest.(check int) "retry succeeds" 3 (grow inst "hd");
      recv_round inst 3)

(* --- Targeted poison of a leaver ----------------------------------------- *)

let detach_while_parked_poisons_only_leaver () =
  with_inst ~lengths:[ ("hd", 3) ] bcast_src "NBcastFifo" (fun inst ->
      let tl = (outports inst "tl").(0) in
      let results = Array.make 3 "" in
      let parked = Array.init 3 (fun _ -> Atomic.make false) in
      let tasks =
        List.init 3 (fun k -> fun () ->
            Atomic.set parked.(k) true;
            match Port.recv (inport_at inst "hd" (k + 1)) with
            | v -> results.(k) <- string_of_int (Value.to_int v)
            | exception Engine.Poisoned msg -> results.(k) <- msg)
      in
      let driver () =
        (* Wait until all three tasks are at least about to park, give
           them a beat to publish, then detach slot 3. Whether its recv is
           already installed or still in the submission queue, it must
           fail with the targeted "detached" poison — not block forever
           and not take the other two slots down. *)
        while not (Array.for_all Atomic.get parked) do
          Thread.yield ()
        done;
        Thread.delay 0.05;
        shrink inst "hd";
        Port.send tl (Value.int 42)
      in
      Task.run_all ~on:(sched inst) (driver :: tasks);
      Alcotest.(check string) "slot 1 delivered" "42" results.(0);
      Alcotest.(check string) "slot 2 delivered" "42" results.(1);
      Alcotest.(check bool)
        (Printf.sprintf "slot 3 got targeted poison (%s)" results.(2))
        true
        (String.length results.(2) > 0
        && String.sub results.(2) 0 8 = "detached"))

let stale_port_fails_after_detach () =
  with_inst ~lengths:[ ("hd", 3) ] bcast_src "NBcastFifo" (fun inst ->
      let stale = inport_at inst "hd" 3 in
      shrink inst "hd";
      match Port.recv stale with
      | exception Engine.Poisoned msg ->
        Alcotest.(check bool) "names the retirement" true
          (String.length msg >= 8 && String.sub msg 0 8 = "detached")
      | _ -> Alcotest.fail "recv on a retired port must fail")

(* --- Churn storms --------------------------------------------------------- *)

let churn_storm_sequencer () =
  with_inst ~lengths:[ ("hd", 2) ] seq_src "NSequencer" (fun inst ->
      (* Breathe the ring 2 -> 6 -> 2 repeatedly, consuming one full round
         at every size so each splice happens at a round boundary. *)
      for _ = 1 to 5 do
        for _ = 1 to 4 do
          ignore (grow inst "hd");
          recv_round inst (group_size inst "hd")
        done;
        for _ = 1 to 4 do
          shrink inst "hd";
          recv_round inst (group_size inst "hd")
        done
      done;
      Alcotest.(check int) "back to 2" 2 (group_size inst "hd");
      Alcotest.(check int) "40 splices" 40
        (Connector.splices (connector inst)))

let churn_storm_broadcast_concurrent () =
  with_inst ~lengths:[ ("hd", 2) ] bcast_src "NBcastFifo" (fun inst ->
      let tl = (outports inst "tl").(0) in
      let rounds = 60 in
      let elastic_served = Atomic.make 0 in
      let producer () =
        for r = 1 to rounds do
          Port.send tl (Value.int r)
        done
      in
      let steady k () =
        for _ = 1 to rounds do
          ignore (Port.recv (inport_at inst "hd" k))
        done
      in
      (* The elastic slot's consumer drains eagerly and ends on the
         detach poison; the churner retries shrink until the slot's fifo
         happens to be empty (quiescence gating under live traffic). *)
      let elastic_consumer () =
        try
          while true do
            ignore (Port.recv (inport_at inst "hd" 3));
            Atomic.incr elastic_served
          done
        with Engine.Poisoned _ -> ()
      in
      let rec retry_shrink budget =
        if budget = 0 then Alcotest.fail "shrink never became quiescent";
        match shrink inst "hd" with
        | () -> ()
        | exception Composer.Not_quiescent _ ->
          Thread.yield ();
          retry_shrink (budget - 1)
      in
      let churner () =
        for _ = 1 to 6 do
          ignore (grow inst "hd");
          let helper = Thread.create elastic_consumer () in
          Thread.delay 0.01;
          retry_shrink 10_000;
          Thread.join helper
        done
      in
      Task.run_all ~on:(sched inst)
        [ producer; steady 1; steady 2; churner ];
      Alcotest.(check int) "steady slots never lost a datum + churn done" 2
        (group_size inst "hd");
      Alcotest.(check int) "12 splices" 12
        (Connector.splices (connector inst)))

(* --- Splice-vs-rebuild boundary on partitioned connectors ---------------- *)

let partitioned_splice_boundary () =
  with_inst ~config:Config.new_partitioned ~domains:2
    ~lengths:[ ("hd", 4) ] bcast_src "NBcastFifo" (fun inst ->
      let serve n v =
        let got = Array.make n 0 in
        Task.run_all ~on:(sched inst)
          ((fun () -> Port.send (outports inst "tl").(0) (Value.int v))
          :: List.init n (fun k -> fun () ->
                 got.(k) <-
                   Value.to_int (Port.recv (inport_at inst "hd" (k + 1)))));
        Alcotest.(check (list int)) "broadcast served"
          (List.init n (fun _ -> v))
          (Array.to_list got)
      in
      serve 4 1;
      match grow inst "hd" with
      | _idx ->
        (* Delta fit inside one region: the grown connector must serve. *)
        serve (group_size inst "hd") 2
      | exception Connector.Splice_error _ ->
        (* Delta crossed a partition cut: that is the documented rebuild
           boundary. The instance must be rolled back and fully live. *)
        Alcotest.(check int) "rolled back" 4 (group_size inst "hd");
        serve 4 2)

(* --- Spliced product ≡ fresh instantiation ------------------------------- *)

let boundary_vertices inst =
  List.concat_map
    (fun (name, is_source) ->
      if is_source then
        Array.to_list (Array.map Port.out_vertex (outports inst name))
      else Array.to_list (Array.map Port.in_vertex (inports inst name)))
    (groups inst)

let visible_product mediums ~boundary =
  let a = Product.all ~max_states:20_000 ~max_trans:200_000 mediums in
  let hidden = Iset.diff a.Automaton.vertices (Iset.of_list boundary) in
  Automaton.trim (Automaton.hide hidden a)

let bisim_spliced_equals_fresh () =
  List.iter
    (fun (ename, grown_group) ->
      let e = Catalog.find ename in
      let c = Catalog.compiled e in
      let spliced = instantiate c ~lengths:(e.Catalog.lengths 2) in
      let fresh = instantiate c ~lengths:(e.Catalog.lengths 3) in
      Fun.protect
        ~finally:(fun () ->
          shutdown spliced;
          shutdown fresh)
        (fun () ->
          ignore (grow spliced grown_group);
          (* Growing one group of a tl+hd entry leaves the other at its
             old size; grow every group so the shapes match. *)
          List.iter
            (fun (g, _) ->
              if group_size spliced g < group_size fresh g then
                ignore (grow spliced g))
            (groups spliced);
          let sb = boundary_vertices spliced in
          let fb = boundary_vertices fresh in
          let rename = Hashtbl.create 16 in
          List.iter2 (fun s f -> Hashtbl.add rename s f) sb fb;
          let sp =
            visible_product
              (Connector.live_mediums (connector spliced))
              ~boundary:sb
            |> Automaton.map_vertices (fun v ->
                   match Hashtbl.find_opt rename v with
                   | Some f -> f
                   | None -> v)
          in
          let fp =
            visible_product
              (Connector.live_mediums (connector fresh))
              ~boundary:fb
          in
          Alcotest.(check bool)
            (ename ^ ": spliced product weakly bisimilar to fresh")
            true
            (Bisim.weakly_equivalent sp fp)))
    [
      ("broadcast_fifo", "hd");
      ("sequencer", "hd");
      ("gather", "tl");
      ("replicator", "hd");
      ("load_balancer", "hd");
    ]

(* --- Batch operations: no-op and watchdog regressions -------------------- *)

let empty_batch_is_noop () =
  with_inst ~lengths:[ ("hd", 2) ] bcast_src "NBcastFifo" (fun inst ->
      Port.send_batch (outports inst "tl").(0) [];
      Alcotest.(check (list int)) "recv_batch 0 yields nothing" []
        (List.map Value.to_int (Port.recv_batch (inport_at inst "hd" 1) 0));
      Alcotest.(check (list int)) "negative count is also a no-op" []
        (List.map Value.to_int (Port.recv_batch (inport_at inst "hd" 1) (-3)));
      Alcotest.(check int) "no steps fired" 0 (steps inst))

let batch_survives_stall_watchdog () =
  (* A no-deadline batch whose stall report comes back from the watchdog
     used to die on an assertion; it must record the stall and keep
     waiting until the protocol completes it. *)
  set_stall_threshold (Some 0.05);
  Fun.protect
    ~finally:(fun () -> set_stall_threshold None)
    (fun () ->
      with_inst ~lengths:[ ("hd", 1) ] bcast_src "NBcastFifo" (fun inst ->
          let tl = (outports inst "tl").(0) in
          let hd = inport_at inst "hd" 1 in
          let got = ref [] in
          Task.run_all ~on:(sched inst)
            [
              (fun () -> Port.send_batch tl (List.map Value.int [ 1; 2; 3 ]));
              (fun () ->
                (* Outwait the watchdog so the parked batch op takes at
                   least one stall report before being served. *)
                Thread.delay 0.2;
                got := List.map Value.to_int (Port.recv_batch hd 3));
            ];
          Alcotest.(check (list int)) "batch completed" [ 1; 2; 3 ] !got;
          let s = Connector.stats (connector inst) in
          Alcotest.(check bool) "stall recorded" true
            (s.Connector.st_stalls > 0)))

let tests =
  [
    ("non-elastic rejected", `Quick, non_elastic_rejected);
    ( "grow keeps buffered data (broadcast)",
      `Quick,
      grow_broadcast_keeps_buffered_data );
    ("shrink last slot (broadcast)", `Quick, shrink_broadcast_last_slot);
    ("grow sequencer round-robin", `Quick, grow_sequencer_round_robin);
    ( "mid-round grow not quiescent",
      `Quick,
      grow_sequencer_mid_round_not_quiescent );
    ( "detach while parked poisons only leaver",
      `Quick,
      detach_while_parked_poisons_only_leaver );
    ("stale port fails after detach", `Quick, stale_port_fails_after_detach);
    ("churn storm: sequencer", `Quick, churn_storm_sequencer);
    ("churn storm: broadcast, concurrent", `Quick, churn_storm_broadcast_concurrent);
    ("partitioned splice boundary", `Quick, partitioned_splice_boundary);
    ("spliced ≡ fresh instantiation", `Quick, bisim_spliced_equals_fresh);
    ("empty batch is a no-op", `Quick, empty_batch_is_noop);
    ("batch survives stall watchdog", `Quick, batch_survives_stall_watchdog);
  ]
