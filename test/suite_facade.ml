(* The public Preo facade: compile/instantiate/run_main, error paths,
   group metadata, datafun registration. *)

open Preo

let gather_src =
  {|NGather(tl[];hd) =
  prod (i:1..#tl) Fifo1(tl[i];m[i])
  mult Merger(m[1..#tl];hd)|}

let compile_and_groups () =
  let c = compile ~source:gather_src ~name:"NGather" in
  let inst = instantiate c ~lengths:[ ("tl", 3) ] in
  Alcotest.(check (list (pair string bool)))
    "groups"
    [ ("tl", true); ("hd", false) ]
    (groups inst);
  Alcotest.(check int) "3 outports" 3 (Array.length (outports inst "tl"));
  Alcotest.(check int) "1 inport" 1 (Array.length (inports inst "hd"));
  shutdown inst

let wrong_polarity_rejected () =
  let c = compile ~source:gather_src ~name:"NGather" in
  let inst = instantiate c ~lengths:[ ("tl", 2) ] in
  Fun.protect ~finally:(fun () -> shutdown inst) (fun () ->
      (match inports inst "tl" with
       | exception Error _ -> ()
       | _ -> Alcotest.fail "tl is source-side");
      (match outports inst "hd" with
       | exception Error _ -> ()
       | _ -> Alcotest.fail "hd is sink-side");
      match outports inst "nonsense" with
      | exception Error _ -> ()
      | _ -> Alcotest.fail "unknown group")

let missing_length_rejected () =
  let c = compile ~source:gather_src ~name:"NGather" in
  match instantiate c ~lengths:[] with
  | exception Error _ -> ()
  | _ -> Alcotest.fail "missing tl length"

let unknown_connector_rejected () =
  match compile ~source:gather_src ~name:"Nope" with
  | exception Error _ -> ()
  | _ -> Alcotest.fail "unknown definition"

let parse_error_is_Error () =
  match parse_check "NGather(tl[];hd) = mult" with
  | exception Error msg ->
    Alcotest.(check bool) "mentions line" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected parse error"

let run_main_missing_task () =
  let src =
    gather_src
    ^ "\nmain(N) = NGather(o[1..N];z) among forall (i:1..N) T.p(o[i]) and T.c(z)"
  in
  match
    run_main_source ~source:src ~params:[ ("N", 2) ] [ ("T.p", fun _ -> ()) ]
  with
  | exception Error msg ->
    Alcotest.(check bool) "names the task" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "expected missing-task error"

let run_main_end_to_end () =
  let src =
    gather_src
    ^ "\nmain(N) = NGather(o[1..N];z) among forall (i:1..N) T.p(o[i]) and T.c(z)"
  in
  let received = ref 0 in
  let inst =
    run_main_source ~source:src ~params:[ ("N", 3) ]
      [
        ("T.p", fun args -> Port.send (out1 (List.hd args)) (Value.int 1));
        ( "T.c",
          fun args ->
            let p = in1 (List.hd args) in
            for _ = 1 to 3 do
              received := !received + Value.to_int (Port.recv p)
            done );
      ]
  in
  Alcotest.(check int) "all three received" 3 !received;
  Alcotest.(check int) "steps: 3 sends + 3 recvs" 6 (steps inst)

let datafun_in_protocol () =
  Datafun.register_fn "double_it" (fun v -> Value.int (2 * Value.to_int v));
  Datafun.register_pred "big" (fun v -> Value.to_int v > 10);
  let src =
    {|P(a;b,c) = Repl2(a;x,y) mult Transform<double_it>(x;b) mult Filter<big>(y;c)|}
  in
  let c = compile ~source:src ~name:"P" in
  let inst = instantiate c ~lengths:[] in
  Fun.protect ~finally:(fun () -> shutdown inst) (fun () ->
      let a = (outports inst "a").(0) in
      let b = (inports inst "b").(0) in
      let cport = (inports inst "c").(0) in
      let got_b = ref [] and got_c = ref [] in
      Task.run_all
        [
          (fun () ->
            List.iter (fun v -> Port.send a (Value.int v)) [ 5; 20; 7 ]);
          (fun () ->
            for _ = 1 to 3 do
              got_b := Value.to_int (Port.recv b) :: !got_b
            done);
          (fun () ->
            (* only 20 passes the filter *)
            got_c := Value.to_int (Port.recv cport) :: !got_c);
        ];
      Alcotest.(check (list int)) "transformed" [ 10; 40; 14 ] (List.rev !got_b);
      Alcotest.(check (list int)) "filtered" [ 20 ] !got_c)

let instantiate_both_configs_same_primitive_behaviour () =
  (* trivial cross-check on a filter+transform protocol *)
  List.iter
    (fun config ->
      let src = {|P(a;b) = Transform<incr>(a;b)|} in
      let c = compile ~source:src ~name:"P" in
      let inst = instantiate ~config c ~lengths:[] in
      Fun.protect ~finally:(fun () -> shutdown inst) (fun () ->
          let a = (outports inst "a").(0) in
          let b = (inports inst "b").(0) in
          let got = ref 0 in
          Task.run_all
            [
              (fun () -> Port.send a (Value.int 41));
              (fun () -> got := Value.to_int (Port.recv b));
            ];
          Alcotest.(check int) "incr applied" 42 !got))
    [ Config.existing; Config.new_jit; Config.new_partitioned ]

let catalog_entries_all_compile () =
  List.iter
    (fun (e : Preo_connectors.Catalog.entry) ->
      let c = Preo_connectors.Catalog.compiled e in
      Alcotest.(check bool)
        (e.name ^ " has mediums")
        true
        (Preo_lang.Template.count_static_mediums c.template
         + Preo_lang.Template.count_dynamic_mediums c.template
        > 0))
    Preo_connectors.Catalog.all

let config_describe_strings () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "nonempty" true
        (String.length (Config.describe c) > 0))
    [
      Config.existing;
      Config.new_jit;
      Config.new_partitioned;
      Config.new_jit_cached 7;
      Config.synchronous_of Config.existing;
      Config.synchronous_of Config.new_jit;
    ]

let stats_reflect_jit_activity () =
  let c = compile ~source:gather_src ~name:"NGather" in
  (* pinned: these counters are JIT-expansion specific, so the test must
     not follow a PREO_BACKEND=coloring process default *)
  let inst = instantiate ~backend:Sched.Automata c ~lengths:[ ("tl", 2) ] in
  Fun.protect ~finally:(fun () -> shutdown inst) (fun () ->
      let outs = outports inst "tl" in
      let consume = (inports inst "hd").(0) in
      Task.run_all
        ((fun () -> for _ = 1 to 10 do ignore (Port.recv consume) done)
        :: List.init 2 (fun i -> fun () ->
               for r = 1 to 5 do Port.send outs.(i) (Value.int r) done));
      let s = Connector.stats (connector inst) in
      Alcotest.(check int) "steps" 20 s.Connector.st_steps;
      Alcotest.(check bool) "expanded some states" true (s.Connector.st_expansions > 0);
      Alcotest.(check bool) "cache reused" true
        (s.Connector.st_cache_hits > s.Connector.st_expansions);
      Alcotest.(check int) "one region" 1 s.Connector.st_regions)

let tests =
  [
    ("compile + groups", `Quick, compile_and_groups);
    ("wrong polarity rejected", `Quick, wrong_polarity_rejected);
    ("missing length rejected", `Quick, missing_length_rejected);
    ("unknown connector rejected", `Quick, unknown_connector_rejected);
    ("parse error surfaces", `Quick, parse_error_is_Error);
    ("run_main missing task", `Quick, run_main_missing_task);
    ("run_main end-to-end", `Quick, run_main_end_to_end);
    ("datafun in protocol", `Quick, datafun_in_protocol);
    ("transform across configs", `Quick, instantiate_both_configs_same_primitive_behaviour);
    ("catalog entries compile", `Quick, catalog_entries_all_compile);
    ("config describe", `Quick, config_describe_strings);
    ("stats reflect jit activity", `Quick, stats_reflect_jit_activity);
  ]