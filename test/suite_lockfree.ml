(* Lock-free data plane: the MPSC submission queue, the SPSC ring, the
   batched self-loop firing, and their integration with the engine's
   poison/wakeup machinery. The submission storms are the adversarial
   cases: many producers publishing concurrently with CAS while one drainer
   installs and completes under the engine lock — a lost submission shows
   up as a hang (the blocking ops never time out), an ordering bug as a
   per-producer sequence inversion. *)

open Preo
module Ring = Preo_support.Ring
module Mpsc = Preo_support.Mpsc

let stress_configs =
  [ ("jit", Config.new_jit); ("partitioned", Config.new_partitioned) ]

let protect_locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let fifo1_conn config =
  let a = Preo_automata.Vertex.fresh "a"
  and b = Preo_automata.Vertex.fresh "b" in
  let auto = Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] in
  (Connector.create ~config ~sources:[| a |] ~sinks:[| b |] [ auto ], a, b)

let sync_conn config =
  let a = Preo_automata.Vertex.fresh "a"
  and b = Preo_automata.Vertex.fresh "b" in
  let auto = Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] in
  (Connector.create ~config ~sources:[| a |] ~sinks:[| b |] [ auto ], a, b)

(* --- Ring unit edges -------------------------------------------------------- *)

let ring_edges () =
  (* Bad capacities and oversized prefills are rejected. *)
  (try
     ignore (Ring.create 0);
     Alcotest.fail "cap 0 accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Ring.create ~init:[ 1; 2 ] 1);
     Alcotest.fail "oversized init accepted"
   with Invalid_argument _ -> ());
  (* Prefill pops oldest first. *)
  let r = Ring.create ~init:[ 1; 2 ] 3 in
  Alcotest.(check int) "prefill length" 2 (Ring.length r);
  Alcotest.(check int) "prefill pop 1" 1 (Ring.pop r);
  Alcotest.(check int) "prefill pop 2" 2 (Ring.pop r);
  Alcotest.(check bool) "empty after prefill drain" true (Ring.is_empty r);
  Alcotest.(check (option int)) "pop_opt on empty" None (Ring.pop_opt r);
  (* Wraparound: cycle a capacity-3 ring far past one lap; FIFO must hold
     across the index wrap. *)
  let out = ref [] in
  for i = 0 to 9 do
    Ring.push r i;
    if i >= 2 then out := Ring.pop r :: !out
  done;
  while not (Ring.is_empty r) do
    out := Ring.pop r :: !out
  done;
  Alcotest.(check (list int)) "wraparound FIFO" (List.init 10 Fun.id)
    (List.rev !out);
  (* Full: pushes beyond capacity are refused, not overwritten. *)
  Alcotest.(check bool) "push to full ring 1" true (Ring.try_push r 100);
  Alcotest.(check bool) "push to full ring 2" true (Ring.try_push r 101);
  Alcotest.(check bool) "push to full ring 3" true (Ring.try_push r 102);
  Alcotest.(check bool) "full refuses" false (Ring.try_push r 103);
  Alcotest.(check bool) "is_full" true (Ring.is_full r);
  (try
     Ring.push r 104;
     Alcotest.fail "push on full accepted"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "peek is oldest" 100 (Ring.peek r);
  (* Batch helpers: pop_upto bounded by occupancy, push_list returns the
     leftovers that did not fit. *)
  Alcotest.(check (list int)) "pop_upto 2" [ 100; 101 ] (Ring.pop_upto r 2);
  Alcotest.(check (list int)) "pop_upto past empty" [ 102 ] (Ring.pop_upto r 5);
  Alcotest.(check (list int)) "push_list leftovers" [ 4; 5 ]
    (Ring.push_list r [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list int)) "push_list contents" [ 1; 2; 3 ]
    (Ring.pop_upto r 3)

(* --- MPSC unit: concurrent pushes keep per-producer order ------------------- *)

let mpsc_order () =
  let q : int Mpsc.t = Mpsc.create () in
  let nprod = 4 and per = 500 in
  let producers =
    List.init nprod (fun p ->
        Thread.create
          (fun () ->
            for k = 0 to per - 1 do
              Mpsc.push q ((p * 10000) + k);
              if k land 63 = 0 then Thread.yield ()
            done)
          ())
  in
  (* Drain concurrently with the pushes, like the engine's drive loop. *)
  let got = ref [] and total = ref 0 in
  while !total < nprod * per do
    match Mpsc.pop_all q with
    | [] -> Thread.yield ()
    | xs ->
      got := List.rev_append xs !got;
      total := !total + List.length xs
  done;
  List.iter Thread.join producers;
  Alcotest.(check bool) "drained empty" true (Mpsc.is_empty q);
  let arrived = List.rev !got in
  Alcotest.(check int) "nothing lost" (nprod * per) (List.length arrived);
  for p = 0 to nprod - 1 do
    let seqs =
      List.filter_map
        (fun x -> if x / 10000 = p then Some (x mod 10000) else None)
        arrived
    in
    Alcotest.(check (list int))
      (Printf.sprintf "producer %d FIFO" p)
      (List.init per Fun.id) seqs
  done

(* --- Submission storm: N producers × 1 drainer through a connector ---------- *)

(* Four producers hammer the same fifo1 tail with tagged values while one
   consumer drains the head. Per-producer submission order must survive
   the lock-free publication: each producer's sequence numbers arrive
   strictly increasing. Also pins the new counters: every blocking op goes
   through the MPSC queue, and nothing in a healthy run broadcasts. *)
let submission_storm () =
  List.iter
    (fun (cname, config) ->
      let conn, a, b = fifo1_conn config in
      Fun.protect ~finally:(fun () -> Connector.close conn) (fun () ->
          let nprod = 4 and per = 100 in
          let out = Connector.outport conn a
          and inp = Connector.inport conn b in
          let arrived = ref [] in
          Task.run_all
            ((fun () ->
               for _ = 1 to nprod * per do
                 arrived := Value.to_int (Port.recv inp) :: !arrived
               done)
            :: List.init nprod (fun p -> fun () ->
                   for k = 0 to per - 1 do
                     Port.send out (Value.int ((p * 1000) + k))
                   done));
          let arrived = List.rev !arrived in
          Alcotest.(check int)
            (cname ^ " nothing lost")
            (nprod * per) (List.length arrived);
          for p = 0 to nprod - 1 do
            let seqs =
              List.filter_map
                (fun x -> if x / 1000 = p then Some (x mod 1000) else None)
                arrived
            in
            Alcotest.(check (list int))
              (Printf.sprintf "%s producer %d order kept" cname p)
              (List.init per Fun.id) seqs
          done;
          let st = Connector.stats conn in
          Alcotest.(check bool) (cname ^ " ops went through MPSC") true
            (st.Connector.st_mpsc_ops >= nprod * per);
          Alcotest.(check bool) (cname ^ " drains batched") true
            (st.Connector.st_mpsc_batches >= 1);
          Alcotest.(check int) (cname ^ " no broadcast during run") 0
            st.Connector.st_wakes_broadcast))
    stress_configs

(* --- Batched firing --------------------------------------------------------- *)

(* A lone Sync channel composes to a one-state self-loop with a guard-free
   command — exactly the shape the engine's batch replay targets. Both
   sides submit through the batch API, so one candidate scan should move
   (nearly) the whole burst: st_batch_fires counts the replays. FIFO order
   across the batch is the correctness half of the check. *)
let batched_firing_order () =
  List.iter
    (fun (cname, config) ->
      let conn, a, b = sync_conn config in
      Fun.protect ~finally:(fun () -> Connector.close conn) (fun () ->
          let k = 16 and rounds = 8 in
          let out = Connector.outport conn a
          and inp = Connector.inport conn b in
          let got = ref [] in
          Task.run_all
            [
              (fun () ->
                for r = 0 to rounds - 1 do
                  Port.send_batch out
                    (List.init k (fun i -> Value.int ((r * k) + i)))
                done);
              (fun () ->
                for _ = 1 to rounds do
                  got := List.rev_map Value.to_int (Port.recv_batch inp k) @ !got
                done);
            ];
          Alcotest.(check (list int))
            (cname ^ " batch FIFO order")
            (List.init (rounds * k) Fun.id)
            (List.rev !got);
          let st = Connector.stats conn in
          Alcotest.(check bool) (cname ^ " self-loop replays happened") true
            (st.Connector.st_batch_fires > 0)))
    stress_configs

(* Mixing batched and singleton submitters on one fifo must preserve each
   submitter's own order (the MPSC queue interleaves producers
   arbitrarily, never within a producer). *)
let batch_vs_singles () =
  let conn, a, b = fifo1_conn Config.new_jit in
  Fun.protect ~finally:(fun () -> Connector.close conn) (fun () ->
      let per = 64 in
      let out = Connector.outport conn a and inp = Connector.inport conn b in
      let arrived = ref [] in
      let lock = Mutex.create () in
      Task.run_all
        [
          (fun () ->
            for r = 0 to (per / 8) - 1 do
              Port.send_batch out
                (List.init 8 (fun i -> Value.int (1000 + (r * 8) + i)))
            done);
          (fun () ->
            for k = 0 to per - 1 do
              Port.send out (Value.int (2000 + k))
            done);
          (fun () ->
            for _ = 1 to 2 * per do
              let v = Value.to_int (Port.recv inp) in
              protect_locked lock (fun () -> arrived := v :: !arrived)
            done);
        ];
      let arrived = List.rev !arrived in
      let stream tag =
        List.filter_map
          (fun x -> if x / 1000 = tag then Some (x mod 1000) else None)
          arrived
      in
      Alcotest.(check (list int)) "batched stream in order"
        (List.init per Fun.id) (stream 1);
      Alcotest.(check (list int)) "singleton stream in order"
        (List.init per Fun.id) (stream 2))

(* --- Poison mid-batch ------------------------------------------------------- *)

(* Tasks parked behind batch submissions (and ops still sitting in the
   MPSC queue) must all be released by close, and post-poison batch
   submission must raise instead of hanging. *)
let poison_mid_batch () =
  List.iter
    (fun (cname, config) ->
      let conn, a, b = fifo1_conn config in
      let out = Connector.outport conn a and inp = Connector.inport conn b in
      (* fifo1 completes exactly one of the 64 sends; the task parks behind
         the rest. The receiver asks for more than will ever arrive. *)
      let sender =
        Task.spawn (fun () ->
            Port.send_batch out (List.init 64 (fun i -> Value.int i)))
      in
      let receiver = Task.spawn (fun () -> ignore (Port.recv_batch inp 32)) in
      Thread.delay 0.05;
      Connector.close conn;
      (* Every task must come back; Task.join swallows Poisoned. *)
      Task.join sender;
      Task.join receiver;
      (try
         Port.send_batch out [ Value.unit ];
         Alcotest.fail (cname ^ " post-poison send_batch accepted")
       with Engine.Poisoned _ -> ());
      (try
         ignore (Port.recv_batch inp 2);
         Alcotest.fail (cname ^ " post-poison recv_batch accepted")
       with Engine.Poisoned _ -> ());
      let st = Connector.stats conn in
      Alcotest.(check bool) (cname ^ " close broadcasts") true
        (st.Connector.st_wakes_broadcast >= 1))
    stress_configs

(* --- Spurious wakes stay zero under the lock-free plane --------------------- *)

(* The deadline-free half of the wakeup suite's invariant, re-checked with
   the MPSC submission path and batch API in play: a clean producer/consumer
   run has no spurious wakes and no broadcasts. *)
let no_spurious_under_storm () =
  let conn, a, b = fifo1_conn Config.new_jit in
  Fun.protect ~finally:(fun () -> Connector.close conn) (fun () ->
      let out = Connector.outport conn a and inp = Connector.inport conn b in
      Task.run_all
        [
          (fun () ->
            for r = 0 to 31 do
              Port.send_batch out (List.init 4 (fun i -> Value.int ((r * 4) + i)))
            done);
          (fun () -> for _ = 1 to 32 do ignore (Port.recv_batch inp 4) done);
        ];
      let st = Connector.stats conn in
      Alcotest.(check int) "no broadcasts" 0 st.Connector.st_wakes_broadcast;
      Alcotest.(check int) "no spurious wakes" 0
        st.Connector.st_wakes_spurious)

let tests =
  [
    ("ring edges", `Quick, ring_edges);
    ("mpsc per-producer order", `Quick, mpsc_order);
    ("submission storm", `Quick, submission_storm);
    ("batched firing order", `Quick, batched_firing_order);
    ("batch vs singles", `Quick, batch_vs_singles);
    ("poison mid-batch", `Quick, poison_mid_batch);
    ("no spurious under storm", `Quick, no_spurious_under_storm);
  ]
