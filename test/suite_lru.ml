(* Tests for the bounded LRU cache backing the JIT state cache and the
   composer's candidate cache. *)

open Preo_support

module L = Lru.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let eviction_order () =
  let c = L.create ~capacity:3 in
  L.add c 1 "a";
  L.add c 2 "b";
  L.add c 3 "c";
  (* Touch 1 so that 2 becomes the least recently used. *)
  Alcotest.(check (option string)) "find 1" (Some "a") (L.find c 1);
  L.add c 4 "d";
  Alcotest.(check (option string)) "2 evicted" None (L.find c 2);
  Alcotest.(check (option string)) "1 kept" (Some "a") (L.find c 1);
  Alcotest.(check (option string)) "3 kept" (Some "c") (L.find c 3);
  Alcotest.(check (option string)) "4 kept" (Some "d") (L.find c 4);
  L.add c 5 "e";
  (* 1, 3, 4 were all touched above; 1 is now the oldest of them. *)
  Alcotest.(check (option string)) "1 evicted second" None (L.find c 1);
  Alcotest.(check int) "length stays at capacity" 3 (L.length c);
  Alcotest.(check int) "two evictions" 2 (L.evictions c)

let refresh_on_add () =
  let c = L.create ~capacity:2 in
  L.add c 1 "a";
  L.add c 2 "b";
  (* Re-adding an existing key refreshes both value and recency. *)
  L.add c 1 "a'";
  L.add c 3 "c";
  Alcotest.(check (option string)) "2 evicted, not 1" None (L.find c 2);
  Alcotest.(check (option string)) "1 has new value" (Some "a'") (L.find c 1)

let capacity_zero_unbounded () =
  let c = L.create ~capacity:0 in
  for i = 1 to 1000 do
    L.add c i (string_of_int i)
  done;
  Alcotest.(check int) "all retained" 1000 (L.length c);
  Alcotest.(check int) "no evictions" 0 (L.evictions c);
  Alcotest.(check (option string)) "oldest still present" (Some "1") (L.find c 1)

let clear_semantics () =
  let c = L.create ~capacity:2 in
  L.add c 1 "a";
  L.add c 2 "b";
  ignore (L.find c 1);
  L.add c 3 "c" (* evicts 2 *);
  L.clear c;
  Alcotest.(check int) "empty after clear" 0 (L.length c);
  Alcotest.(check (option string)) "no stale entries" None (L.find c 1);
  (* The cache is usable again after clear, up to full capacity. *)
  L.add c 4 "d";
  L.add c 5 "e";
  Alcotest.(check int) "refilled" 2 (L.length c);
  L.add c 6 "f";
  Alcotest.(check (option string)) "eviction works post-clear" None (L.find c 4)

let counters () =
  let c = L.create ~capacity:2 in
  L.add c 1 "a";
  ignore (L.find c 1);
  ignore (L.find c 1);
  ignore (L.find c 99) (* miss: not counted *);
  Alcotest.(check int) "two hits" 2 (L.hits c);
  L.add c 2 "b";
  L.add c 3 "c";
  Alcotest.(check int) "one eviction" 1 (L.evictions c);
  L.clear c;
  (* Instrumentation counters are cumulative across clears. *)
  Alcotest.(check int) "hits survive clear" 2 (L.hits c);
  Alcotest.(check int) "evictions survive clear" 1 (L.evictions c)

let tests =
  [
    Alcotest.test_case "eviction order" `Quick eviction_order;
    Alcotest.test_case "add refreshes recency" `Quick refresh_on_add;
    Alcotest.test_case "capacity 0 is unbounded" `Quick capacity_zero_unbounded;
    Alcotest.test_case "clear" `Quick clear_semantics;
    Alcotest.test_case "hit and eviction counters" `Quick counters;
  ]
