(* NPB kernels: hand-written vs connector-based variants must agree
   bit-for-bit (rank-ordered reductions), across runtimes. *)

module W = Preo_npb.Workloads

let check_verify name f =
  List.iter
    (fun n ->
      Alcotest.(check bool) (Printf.sprintf "%s N=%d" name n) true (f W.S ~nslaves:n))
    [ 1; 2; 4 ]

let cg_verify () = check_verify "cg" Preo_npb.Cg.verify
let lu_verify () = check_verify "lu" Preo_npb.Lu.verify
let ep_verify () = check_verify "ep" Preo_npb.Ep.verify
let is_verify () = check_verify "is" Preo_npb.Is.verify
let mg_verify () = check_verify "mg" Preo_npb.Mg.verify

let allreduce_array_matches () =
  (* hand and reo array allreduce agree elementwise, across phases *)
  let n = 3 in
  let run mk =
    let comm : Preo_npb.Comm.t = mk () in
    let results = Array.make n [||] in
    Preo_runtime.Task.run_all
      (List.init n (fun rank () ->
           let a = Array.init 5 (fun i -> float_of_int ((rank * 10) + i)) in
           let r1 = comm.allreduce_array ~rank a in
           let r2 = comm.allreduce_array ~rank (Array.map (fun x -> x +. 1.0) r1) in
           results.(rank) <- r2));
    comm.finish ();
    results.(0)
  in
  let hand = run (fun () -> Preo_npb.Comm.hand ~nslaves:n) in
  let reo = run (fun () -> Preo_npb.Comm.reo ~nslaves:n ()) in
  Alcotest.(check (array (Alcotest.float 0.0))) "same arrays" hand reo;
  (* phase 1: elementwise sum of [0..4],[10..14],[20..24] = [30,33,36,39,42];
     phase 2: 3 * (that + 1) *)
  Alcotest.(check (array (Alcotest.float 0.0))) "expected"
    [| 93.0; 102.0; 111.0; 120.0; 129.0 |]
    hand

let cg_partitioned_matches () =
  let hand =
    Preo_npb.Cg.run ~comm:(Preo_npb.Comm.hand ~nslaves:3) ~cls:W.S ~nslaves:3
  in
  let part =
    Preo_npb.Cg.run
      ~comm:
        (Preo_npb.Comm.reo ~config:Preo_runtime.Config.new_partitioned
           ~nslaves:3 ())
      ~cls:W.S ~nslaves:3
  in
  Alcotest.(check bool) "partitioned zeta equal" true (hand.zeta = part.zeta)

let cg_existing_runtime_matches () =
  let hand =
    Preo_npb.Cg.run ~comm:(Preo_npb.Comm.hand ~nslaves:2) ~cls:W.S ~nslaves:2
  in
  let exist =
    Preo_npb.Cg.run
      ~comm:(Preo_npb.Comm.reo ~config:Preo_runtime.Config.existing ~nslaves:2 ())
      ~cls:W.S ~nslaves:2
  in
  Alcotest.(check bool) "existing-runtime zeta equal" true (hand.zeta = exist.zeta)

let cg_zeta_plausible () =
  (* shift 10 + 1/(x.z) with an SPD matrix: eigenvalue estimate near shift *)
  let r = Preo_npb.Cg.run ~comm:(Preo_npb.Comm.hand ~nslaves:2) ~cls:W.S ~nslaves:2 in
  Alcotest.(check bool) "zeta in range" true (r.zeta > 10.0 && r.zeta < 13.0)

let cg_zeta_independent_of_runtime_interleaving () =
  (* Same N, repeated runs: deterministic. *)
  let run () =
    (Preo_npb.Cg.run ~comm:(Preo_npb.Comm.reo ~nslaves:3 ()) ~cls:W.S ~nslaves:3).zeta
  in
  Alcotest.(check bool) "deterministic" true (run () = run ())

let ep_estimates_pi () =
  let r = Preo_npb.Ep.run ~comm:(Preo_npb.Comm.hand ~nslaves:4) ~cls:W.S ~nslaves:4 in
  Alcotest.(check bool) "pi-ish" true (Float.abs (r.estimate -. 3.14159) < 0.1)

let lu_residual_decreases_with_iters () =
  (* More sweeps, smaller residual change per sweep: sanity only — run W vs
     S and require both positive and finite. *)
  let s = Preo_npb.Lu.run ~comm:(Preo_npb.Comm.hand ~nslaves:2) ~cls:W.S ~nslaves:2 in
  Alcotest.(check bool) "finite residual" true
    (Float.is_finite s.residual && s.residual >= 0.0)

let reo_steps_counted () =
  let r = Preo_npb.Cg.run ~comm:(Preo_npb.Comm.reo ~nslaves:2 ()) ~cls:W.S ~nslaves:2 in
  Alcotest.(check bool) "connector steps > 0" true (r.comm_steps > 0)

let handsync_barrier_cycles () =
  let b = Preo_npb.Handsync.barrier 3 in
  let hits = Array.make 3 0 in
  Preo_runtime.Task.run_all
    (List.init 3 (fun i -> fun () ->
         for r = 1 to 50 do
           hits.(i) <- hits.(i) + 1;
           ignore r;
           Preo_npb.Handsync.await b
         done));
  Alcotest.(check (list int)) "all arrived 50x" [ 50; 50; 50 ] (Array.to_list hits)

let handsync_reducer_rank_order () =
  let r = Preo_npb.Handsync.reducer 3 in
  let results = Array.make 3 0.0 in
  Preo_runtime.Task.run_all
    (List.init 3 (fun i -> fun () ->
         results.(i) <- Preo_npb.Handsync.reduce r i (float_of_int (i + 1))));
  Array.iter (fun x -> Alcotest.(check (Alcotest.float 0.0)) "sum" 6.0 x) results

let handsync_channel_fifo () =
  let c = Preo_npb.Handsync.channel () in
  for i = 1 to 10 do Preo_npb.Handsync.send c i done;
  for i = 1 to 10 do
    Alcotest.(check int) "order" i (Preo_npb.Handsync.recv c)
  done

(* Autoscaling EP: the slave pool grows and shrinks mid-run through elastic
   splices, and the estimate must still be bit-identical to a sequential
   evaluation of the same chunks. *)
let ep_elastic_verify () =
  Alcotest.(check bool) "autoscaled estimate exact" true
    (Preo_npb.Ep_elastic.verify Preo_npb.Workloads.S)

let ep_elastic_scales () =
  let r = Preo_npb.Ep_elastic.run ~schedule:[ 1; 3; 2 ] ~cls:Preo_npb.Workloads.S () in
  Alcotest.(check int) "peak pool size" 3 r.Preo_npb.Ep_elastic.peak_slaves;
  Alcotest.(check bool) "spliced while scaling" true
    (r.Preo_npb.Ep_elastic.splices >= 6);
  Alcotest.(check bool) "communicated" true (r.Preo_npb.Ep_elastic.comm_steps > 0)

let tests =
  [
    ("cg hand=reo", `Quick, cg_verify);
    ("lu hand=reo", `Quick, lu_verify);
    ("ep hand=reo", `Quick, ep_verify);
    ("is hand=reo", `Quick, is_verify);
    ("mg hand=reo", `Quick, mg_verify);
    ("allreduce_array hand=reo", `Quick, allreduce_array_matches);
    ("cg partitioned matches", `Quick, cg_partitioned_matches);
    ("cg existing-runtime matches", `Quick, cg_existing_runtime_matches);
    ("cg zeta plausible", `Quick, cg_zeta_plausible);
    ("cg deterministic", `Quick, cg_zeta_independent_of_runtime_interleaving);
    ("ep estimates pi", `Quick, ep_estimates_pi);
    ("lu residual sane", `Quick, lu_residual_decreases_with_iters);
    ("reo comm steps counted", `Quick, reo_steps_counted);
    ("handsync barrier", `Quick, handsync_barrier_cycles);
    ("handsync reducer", `Quick, handsync_reducer_rank_order);
    ("handsync channel", `Quick, handsync_channel_fifo);
    ("ep autoscaled exact", `Quick, ep_elastic_verify);
    ("ep autoscaling schedule", `Quick, ep_elastic_scales);
  ]
