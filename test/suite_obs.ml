(* Observability: trace rings, Chrome trace export, metrics, and bridge span
   correlation.

   Rings are process-global, so every test starts from [Obs.reset] and turns
   tracing off again on exit. Bridge RPC rings and the partition "bridges"
   ring are cached by their modules after first use, so the single test that
   exercises each of those paths is also the only one that resets around it. *)

module Obs = Preo_obs.Obs
module Metrics = Preo_obs.Metrics
module Json = Preo_obs.Json
module Wire = Preo_dist.Wire
module Bridge = Preo_dist.Bridge

open Preo_support
open Preo_automata
open Preo_runtime

let v = Vertex.fresh
let prim = Preo_reo.Prim.build

let with_tracing f =
  Obs.reset ();
  Metrics.reset ();
  Obs.set_tracing true;
  Fun.protect ~finally:(fun () -> Obs.set_tracing false) f

(* Drive [n] values through a sync channel; returns the connector (already
   poisoned) so callers can export its trace. *)
let traced_sync_run n =
  let a = v "a" and b = v "b" in
  let conn =
    Connector.create ~sources:[| a |] ~sinks:[| b |]
      [ prim Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] ]
  in
  Task.run_all
    [
      (fun () ->
        for i = 1 to n do
          Port.send (Connector.outport conn a) (Value.int i)
        done);
      (fun () ->
        for _ = 1 to n do
          ignore (Port.recv (Connector.inport conn b))
        done);
    ];
  Connector.poison conn "done";
  conn

let find_ring name =
  List.find_opt (fun r -> String.equal (Obs.ring_name r) name) (Obs.rings ())

let count_kind k ring =
  List.length (List.filter (fun e -> e.Obs.e_kind = k) (Obs.events ring))

(* --- the flag ------------------------------------------------------------- *)

let tracing_off_records_nothing () =
  Obs.reset ();
  Metrics.reset ();
  Obs.set_tracing false;
  ignore (traced_sync_run 10);
  Alcotest.(check int) "no rings registered" 0 (List.length (Obs.rings ()));
  Alcotest.(check int) "no metric increments" 0
    (Metrics.counter_value (Metrics.counter "transitions_fired_total"))

(* --- engine events -------------------------------------------------------- *)

let traced_run_records_engine_events () =
  with_tracing (fun () ->
      let _conn = traced_sync_run 10 in
      match find_ring "engine0" with
      | None -> Alcotest.fail "engine ring was not registered"
      | Some r ->
        Alcotest.(check bool) "fired at least 10 times" true
          (count_kind Obs.Fire r >= 10);
        Alcotest.(check bool) "submits recorded" true
          (count_kind Obs.Submit_send r >= 10 && count_kind Obs.Submit_recv r >= 10);
        Alcotest.(check bool) "completions recorded" true
          (count_kind Obs.Complete_send r >= 10 && count_kind Obs.Complete_recv r >= 10);
        Alcotest.(check int) "poison recorded" 1 (count_kind Obs.Poison r);
        Alcotest.(check bool) "recorded counter" true (Obs.recorded r > 0);
        Alcotest.(check int) "nothing overwritten" 0 (Obs.dropped r))

(* --- Chrome trace export --------------------------------------------------- *)

(* The exported JSON must parse, expose the correlation ID, and keep each
   engine lane's events in non-decreasing timestamp order. *)
let chrome_trace_parses_and_lanes_ordered () =
  with_tracing (fun () ->
      let conn = traced_sync_run 10 in
      let json = Json.parse_exn (Connector.chrome_trace conn) in
      let events =
        match Json.member "traceEvents" json with
        | Some a -> Json.to_list a
        | None -> Alcotest.fail "no traceEvents array"
      in
      Alcotest.(check bool) "has events" true (events <> []);
      (match Json.member "otherData" json with
       | Some od ->
         Alcotest.(check bool) "correlation exported" true
           (Json.member "correlation" od <> None)
       | None -> Alcotest.fail "no otherData");
      let field name ev =
        match Json.member name ev with
        | Some x -> x
        | None -> Alcotest.fail (Printf.sprintf "event missing %S" name)
      in
      let num name ev = Option.get (Json.to_float (field name ev)) in
      (* group real (non-metadata) events of ring lanes by tid, in array
         order; ring lanes live at tid >= 900000 *)
      let lanes = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          let ph = Option.get (Json.to_string (field "ph" ev)) in
          let tid = int_of_float (num "tid" ev) in
          if (not (String.equal ph "M")) && tid >= 900_000 then
            Hashtbl.replace lanes tid (num "ts" ev :: (try Hashtbl.find lanes tid with Not_found -> [])))
        events;
      Alcotest.(check bool) "at least one engine lane" true
        (Hashtbl.length lanes > 0);
      Hashtbl.iter
        (fun tid rev_ts ->
          let ts = List.rev rev_ts in
          Alcotest.(check bool)
            (Printf.sprintf "lane %d has events" tid)
            true (ts <> []);
          let rec ordered = function
            | a :: (b :: _ as rest) -> a <= b && ordered rest
            | _ -> true
          in
          Alcotest.(check bool)
            (Printf.sprintf "lane %d timestamps non-decreasing" tid)
            true (ordered ts))
        lanes)

(* --- partitioned runs ------------------------------------------------------ *)

let partitioned_run_has_lane_per_engine () =
  with_tracing (fun () ->
      let a = v "a" and m1 = v "m1" and m2 = v "m2" and b = v "b" in
      let conn =
        Connector.create ~config:Config.new_partitioned ~sources:[| a |]
          ~sinks:[| b |]
          [
            prim Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ m1 ];
            prim Preo_reo.Prim.Fifo1 ~tails:[ m1 ] ~heads:[ m2 ];
            prim Preo_reo.Prim.Fifo1 ~tails:[ m2 ] ~heads:[ b ];
          ]
      in
      Task.run_all
        [
          (fun () ->
            for i = 1 to 10 do
              Port.send (Connector.outport conn a) (Value.int i)
            done);
          (fun () ->
            for _ = 1 to 10 do
              ignore (Port.recv (Connector.inport conn b))
            done);
        ];
      Connector.poison conn "done";
      Alcotest.(check bool) "actually partitioned" true
        (Connector.nregions conn > 1);
      let engine_rings =
        List.filter
          (fun r -> String.starts_with ~prefix:"engine" (Obs.ring_name r))
          (Obs.rings ())
      in
      Alcotest.(check bool) "one ring per region engine" true
        (List.length engine_rings >= Connector.nregions conn);
      List.iter
        (fun r ->
          Alcotest.(check bool)
            (Obs.ring_label r ^ " recorded events")
            true
            (Obs.events r <> []))
        engine_rings;
      match find_ring "bridges" with
      | None -> Alcotest.fail "no partition-bridge ring"
      | Some r ->
        Alcotest.(check bool) "slot puts seen" true (count_kind Obs.Slot_put r >= 10);
        Alcotest.(check bool) "slot takes seen" true (count_kind Obs.Slot_take r >= 10))

(* --- metrics ---------------------------------------------------------------- *)

let metrics_capture_traced_run () =
  with_tracing (fun () ->
      ignore (traced_sync_run 10);
      Alcotest.(check bool) "fires counted" true
        (Metrics.counter_value (Metrics.counter "transitions_fired_total") >= 10);
      Alcotest.(check bool) "sends counted" true
        (Metrics.counter_value (Metrics.counter "port_sends_total") >= 10);
      Alcotest.(check bool) "port waits observed" true
        (Metrics.histogram_count (Metrics.histogram "port_wait_seconds") >= 10);
      let prom = Metrics.to_prometheus () in
      let has needle =
        let nl = String.length needle and pl = String.length prom in
        let rec go i = i + nl <= pl && (String.sub prom i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "prometheus counter line" true
        (has "preo_transitions_fired_total");
      Alcotest.(check bool) "prometheus histogram buckets" true
        (has "preo_port_wait_seconds_bucket");
      (* the JSON serialization must itself be valid JSON *)
      ignore (Json.parse_exn (Metrics.to_json ())))

(* --- bridge span correlation ------------------------------------------------ *)

(* Two assertions in one bridged session:
   1. the high-level Bridge.rpc path stamps client and server events with the
      same correlation ID and pairwise-matching span IDs;
   2. a hand-built frame carrying a *foreign* correlation proves the server
      takes the ID from the frame bytes, not from its own process state —
      which is what makes exports from two real processes merge. *)
let bridged_spans_share_correlation () =
  with_tracing (fun () ->
      Obs.set_correlation 424242;
      let a = v "a" and b = v "b" in
      let conn =
        Connector.create ~sources:[| a |] ~sinks:[| b |]
          [ prim (Preo_reo.Prim.Fifo_n 8) ~tails:[ a ] ~heads:[ b ] ]
      in
      let s_out, c_out = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let s_in, c_in = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let srv_out = Bridge.serve_outport (Connector.outport conn a) s_out in
      let srv_in = Bridge.serve_inport (Connector.inport conn b) s_in in
      let rout = Bridge.remote_outport c_out in
      for i = 1 to 5 do
        Bridge.send rout (Value.int i)
      done;
      (* hand-built traced frame with a correlation this process never had *)
      Wire.write_request
        ~span:{ Wire.sp_corr = 987_654; sp_span = 77 }
        c_in Wire.Req_recv;
      (match Wire.read_response c_in with
       | Wire.Resp_value x -> Alcotest.(check int) "value served" 1 (Value.to_int x)
       | _ -> Alcotest.fail "expected a value response");
      Bridge.close_remote c_out;
      Wire.write_request c_in Wire.Req_close;
      Unix.close c_in;
      Thread.join srv_out;
      Thread.join srv_in;
      Connector.poison conn "done";
      let client = Option.get (find_ring "rpc-client") in
      let server = Option.get (find_ring "rpc-server") in
      let starts k ring =
        List.filter_map
          (fun e -> if e.Obs.e_kind = k then Some (e.Obs.e_a, e.Obs.e_b) else None)
          (Obs.events ring)
      in
      let client_spans = starts Obs.Rpc_client_start client in
      let server_spans = starts Obs.Rpc_server_start server in
      Alcotest.(check bool) "client recorded RPCs" true
        (List.length client_spans >= 5);
      List.iter
        (fun (_, corr) ->
          Alcotest.(check int) "client events carry the set correlation" 424242 corr)
        client_spans;
      (* every client span surfaced on the server with the same correlation *)
      List.iter
        (fun (span, _) ->
          Alcotest.(check bool)
            (Printf.sprintf "span %d seen on server with shared correlation" span)
            true
            (List.mem (span, 424242) server_spans))
        client_spans;
      Alcotest.(check bool) "foreign correlation taken from the frame" true
        (List.mem (77, 987_654) server_spans))

let tests =
  [
    ("tracing off records nothing", `Quick, tracing_off_records_nothing);
    ("traced run records engine events", `Quick, traced_run_records_engine_events);
    ("chrome trace parses, lanes ordered", `Quick, chrome_trace_parses_and_lanes_ordered);
    ("partitioned run has lane per engine", `Quick, partitioned_run_has_lane_per_engine);
    ("metrics capture traced run", `Quick, metrics_capture_traced_run);
    ("bridged spans share correlation", `Quick, bridged_spans_share_correlation);
  ]
