(* Runtime: engines, composers, partition, poisoning, cache. *)

open Preo_support
open Preo_automata
open Preo_runtime

let v = Vertex.fresh

let mk_conn ?config ?compile prims ~sources ~sinks =
  Connector.create ?config ?compile ~sources ~sinks prims

let sync_conn config =
  let a = v "a" and b = v "b" in
  let auto = Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] in
  (mk_conn ~config [ auto ] ~sources:[| a |] ~sinks:[| b |], a, b)

let all_configs =
  [
    ("existing", Config.existing);
    ("jit", Config.new_jit);
    ("jit-nolabel", Config.New
       { optimize_labels = false; cache_capacity = 0; expansion_budget = 2_000_000;
         partition = false; true_synchronous = false });
    ("existing-nodispatch", Config.Existing
       { use_dispatch = false; optimize_labels = false; max_states = 200_000;
         max_trans = 2_000_000; max_compile_seconds = 30.0;
         true_synchronous = false });
    ("partitioned", Config.new_partitioned);
    ("cached8", Config.new_jit_cached 8);
  ]

let sync_rendezvous () =
  List.iter
    (fun (name, config) ->
      let conn, a, b = sync_conn config in
      let got = ref [] in
      Task.run_all
        [
          (fun () ->
            for i = 1 to 10 do
              Port.send (Connector.outport conn a) (Value.int i)
            done);
          (fun () ->
            for _ = 1 to 10 do
              got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
            done);
        ];
      Alcotest.(check (list int)) (name ^ " order") [1;2;3;4;5;6;7;8;9;10]
        (List.rev !got);
      Alcotest.(check int) (name ^ " steps") 10 (Connector.steps conn))
    all_configs

let fifo_decouples () =
  (* A send into an empty fifo completes without a receiver. *)
  let a = v "a" and b = v "b" in
  let auto = Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] in
  let conn = mk_conn ~config:Config.new_jit [ auto ] ~sources:[| a |] ~sinks:[| b |] in
  Port.send (Connector.outport conn a) (Value.int 42);
  Alcotest.(check int) "one step" 1 (Connector.steps conn);
  let got = Port.recv (Connector.inport conn b) in
  Alcotest.(check bool) "value preserved" true (Value.equal got (Value.int 42))

let fifo_order_preserved () =
  List.iter
    (fun (name, config) ->
      let a = v "a" and m = v "m" and b = v "b" in
      let autos =
        [
          Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ m ];
          Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m ] ~heads:[ b ];
        ]
      in
      let conn = mk_conn ~config autos ~sources:[| a |] ~sinks:[| b |] in
      let got = ref [] in
      Task.run_all
        [
          (fun () ->
            for i = 1 to 50 do
              Port.send (Connector.outport conn a) (Value.int i)
            done);
          (fun () ->
            for _ = 1 to 50 do
              got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
            done);
        ];
      Alcotest.(check (list int)) (name ^ " fifo order")
        (List.init 50 (fun i -> i + 1))
        (List.rev !got))
    all_configs

let poison_unblocks () =
  let conn, a, _ = sync_conn Config.new_jit in
  let blocked = Task.spawn (fun () ->
      Port.send (Connector.outport conn a) Value.unit)
  in
  Thread.delay 0.02;
  Connector.poison conn "test";
  (* join swallows Poisoned *)
  Task.join blocked;
  Alcotest.(check int) "no steps" 0 (Connector.steps conn)

let send_after_poison_raises () =
  let conn, a, _ = sync_conn Config.new_jit in
  Connector.poison conn "gone";
  match Port.send (Connector.outport conn a) Value.unit with
  | exception Engine.Poisoned _ -> ()
  | () -> Alcotest.fail "expected Poisoned"

let unknown_boundary_vertex_rejected () =
  let conn, _, _ = sync_conn Config.new_jit in
  match Connector.outport conn (v "ghost") with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let compile_failure_on_budget () =
  let autos =
    List.init 24 (fun i ->
        Preo_reo.Prim.build Preo_reo.Prim.Fifo1
          ~tails:[ v (Printf.sprintf "a%d" i) ]
          ~heads:[ v (Printf.sprintf "b%d" i) ])
  in
  let sources = Array.of_list (List.map (fun (a : Automaton.t) -> Iset.choose a.sources) autos) in
  let sinks = Array.of_list (List.map (fun (a : Automaton.t) -> Iset.choose a.sinks) autos) in
  match
    mk_conn ~config:(Config.existing_states 1000) autos ~sources ~sinks
  with
  | exception Connector.Compile_failure _ -> ()
  | _ -> Alcotest.fail "expected Compile_failure"

(* JIT with a tiny bounded cache must still be correct (recompute evicted
   states) and must actually evict. *)
let bounded_cache_recomputes () =
  let a = v "a" and m = v "m" and b = v "b" in
  let autos =
    [
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ m ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m ] ~heads:[ b ];
    ]
  in
  let conn = mk_conn ~config:(Config.new_jit_cached 1) autos ~sources:[| a |] ~sinks:[| b |] in
  let got = ref [] in
  Task.run_all
    [
      (fun () ->
        for i = 1 to 30 do
          Port.send (Connector.outport conn a) (Value.int i)
        done);
      (fun () ->
        for _ = 1 to 30 do
          got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
        done);
    ];
  Alcotest.(check (list int)) "order despite eviction"
    (List.init 30 (fun i -> i + 1))
    (List.rev !got);
  Alcotest.(check bool) "evictions happened" true (Connector.cache_evictions conn > 0)

(* Expansion budget: a lossy broadcast over many branches blows up a single
   state's expansion under the synchronous product. *)
let expansion_blowup_poisons () =
  let n = 18 in
  let a = v "a" in
  let xs = List.init n (fun i -> v (Printf.sprintf "x%d" i)) in
  let bs = List.init n (fun i -> v (Printf.sprintf "b%d" i)) in
  let autos =
    Preo_reo.Prim.build Preo_reo.Prim.Replicator ~tails:[ a ] ~heads:xs
    :: List.map2
         (fun x b -> Preo_reo.Prim.build Preo_reo.Prim.Lossy_sync ~tails:[ x ] ~heads:[ b ])
         xs bs
  in
  let config =
    Config.New
      { optimize_labels = true; cache_capacity = 0; expansion_budget = 10_000;
        partition = false; true_synchronous = false }
  in
  (* the automata expansion budget specifically: pin the backend so a
     PREO_BACKEND=coloring run (where this shape does not blow up) still
     exercises the JIT path *)
  let conn =
    Connector.create ~config ~backend:Preo_runtime.Sched.Automata ~sources:[| a |]
      ~sinks:(Array.of_list bs) autos
  in
  (match Port.send (Connector.outport conn a) Value.unit with
   | exception Engine.Poisoned _ -> ()
   | () -> Alcotest.fail "expected blow-up");
  Alcotest.(check bool) "failure recorded" true (Connector.failure conn <> None)

(* --- Partition ------------------------------------------------------------- *)

let partition_recognizes_fifo () =
  let a = v "a" and b = v "b" in
  let f = Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] in
  (match Partition.is_plain_fifo1 f with
   | Some (t, h) ->
     Alcotest.(check bool) "ends" true (Vertex.equal t a && Vertex.equal h b)
   | None -> Alcotest.fail "fifo1 not recognized");
  let s = Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] in
  Alcotest.(check bool) "sync not fifo" true (Partition.is_plain_fifo1 s = None);
  let ff = Preo_reo.Prim.build (Preo_reo.Prim.Fifo1_full Value.unit) ~tails:[ a ] ~heads:[ b ] in
  Alcotest.(check bool) "full fifo not plain" true (Partition.is_plain_fifo1 ff = None)

let partition_splits_pipeline () =
  (* repl -> fifo -> merger-ish chain: sync(a;m1) fifo(m1;m2) sync(m2;b) *)
  let a = v "a" and m1 = v "m1" and m2 = v "m2" and b = v "b" in
  let autos =
    [
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ m1 ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m1 ] ~heads:[ m2 ];
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ m2 ] ~heads:[ b ];
    ]
  in
  let plan =
    Partition.split ~sequentialize:false ~sources:(Iset.singleton a)
      ~sinks:(Iset.singleton b) autos
  in
  Alcotest.(check int) "2 regions" 2 (Array.length plan.Partition.regions);
  Alcotest.(check int) "1 bridge" 1 plan.Partition.nbridges;
  Array.iter
    (fun (r : Partition.region) ->
      Alcotest.(check bool) "region has adjacency" true (r.bridge_peers <> []))
    plan.Partition.regions;
  (* The sequentializer recognizes this pipeline's cut as strictly
     alternating and fuses it back when enabled. *)
  let fused =
    Partition.split ~sequentialize:true ~sources:(Iset.singleton a)
      ~sinks:(Iset.singleton b) autos
  in
  Alcotest.(check int) "fused to one region" 1
    (Array.length fused.Partition.regions);
  Alcotest.(check int) "one merge counted" 1 fused.Partition.nfused

let partition_boundary_fifo_not_cut () =
  let a = v "a" and b = v "b" in
  let autos = [ Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ] ] in
  let plan =
    Partition.split ~sources:(Iset.singleton a) ~sinks:(Iset.singleton b) autos
  in
  Alcotest.(check int) "one region" 1 (Array.length plan.Partition.regions);
  Alcotest.(check int) "no bridges" 0 plan.Partition.nbridges

let partition_fifo_chain_alternates () =
  (* Chain of 6 fifos between boundary a and b: vertex-cover promotion must
     produce at least 2 regions with bridges. *)
  let vs = Array.init 7 (fun i -> v (Printf.sprintf "m%d" i)) in
  let autos =
    List.init 6 (fun i ->
        Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ vs.(i) ] ~heads:[ vs.(i + 1) ])
  in
  let plan =
    Partition.split ~sources:(Iset.singleton vs.(0)) ~sinks:(Iset.singleton vs.(6))
      autos
  in
  Alcotest.(check bool) "at least 2 regions" true
    (Array.length plan.Partition.regions >= 2);
  Alcotest.(check bool) "bridges exist" true (plan.Partition.nbridges >= 1)

(* A 3-state single-cell duplicator: consume on [t], then emit the datum
   twice on [h]. Every state is modal (all-tail or all-head), so the general
   SPSC recognizer must accept it even though it is no fifo. *)
let duplicator t h =
  let open Constr in
  let c = Cell.fresh "dup" in
  let tr sync constr target = { Automaton.sync; constr; command = None; target } in
  Automaton.make ~nstates:3 ~initial:0
    ~trans:
      [|
        [| tr (Iset.singleton t) [ Post c === Port t ] 1 |];
        [| tr (Iset.singleton h) [ Port h === Pre c ] 2 |];
        [| tr (Iset.singleton h) [ Port h === Pre c ] 0 |];
      |]
    ~sources:(Iset.singleton t) ~sinks:(Iset.singleton h)

let partition_classifies_shapes () =
  let a = v "a" and b = v "b" in
  (match
     Partition.classify
       (Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ])
   with
  | Some (Partition.Cut_queue { q_cap = 1; q_init = []; q_tail; q_head }) ->
    Alcotest.(check bool) "fifo ends" true
      (Vertex.equal q_tail a && Vertex.equal q_head b)
  | _ -> Alcotest.fail "fifo1 should classify as an empty capacity-1 queue");
  (match
     Partition.classify
       (Preo_reo.Prim.build
          (Preo_reo.Prim.Fifo1_full (Value.int 9))
          ~tails:[ a ] ~heads:[ b ])
   with
  | Some (Partition.Cut_queue { q_cap = 1; q_init = [ x ]; _ }) ->
    Alcotest.(check int) "seed value" 9 (Value.to_int x)
  | _ -> Alcotest.fail "full fifo1 should classify as a pre-seeded queue");
  (match
     Partition.classify
       (Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ])
   with
  | None -> ()
  | Some _ -> Alcotest.fail "sync fires tail and head together: never cut");
  match Partition.classify (duplicator a b) with
  | Some (Partition.Cut_auto { a_tail; a_head; _ }) ->
    Alcotest.(check bool) "modal ends" true
      (Vertex.equal a_tail a && Vertex.equal a_head b)
  | _ -> Alcotest.fail "modal duplicator should classify as a bridge automaton"

(* Initially-full fifo1 between two solid components: cut, and the seed
   value comes out first (the settle pass drives it to the consumer side
   before any task runs). *)
let partition_cuts_full_fifo () =
  let a = v "a" and m1 = v "m1" and m2 = v "m2" and b = v "b" in
  let autos () =
    [
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ m1 ];
      Preo_reo.Prim.build
        (Preo_reo.Prim.Fifo1_full (Value.int 99))
        ~tails:[ m1 ] ~heads:[ m2 ];
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ m2 ] ~heads:[ b ];
    ]
  in
  let plan =
    Partition.split ~sequentialize:false ~sources:(Iset.singleton a)
      ~sinks:(Iset.singleton b) (autos ())
  in
  Alcotest.(check int) "2 regions" 2 (Array.length plan.Partition.regions);
  Alcotest.(check int) "1 bridge" 1 plan.Partition.nbridges;
  let conn =
    mk_conn ~config:Config.new_partitioned (autos ()) ~sources:[| a |]
      ~sinks:[| b |]
  in
  let got = ref [] in
  Task.run_all
    [
      (fun () ->
        for i = 1 to 5 do
          Port.send (Connector.outport conn a) (Value.int i)
        done);
      (fun () ->
        for _ = 1 to 6 do
          got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
        done);
    ];
  Alcotest.(check (list int)) "seed first, then order"
    [ 99; 1; 2; 3; 4; 5 ] (List.rev !got)

(* Two internal fifo1s in a row collapse into ONE capacity-2 bridge: a
   single cut instead of three regions. *)
let partition_collapses_chain () =
  let a = v "a" and m1 = v "m1" and m2 = v "m2" and m3 = v "m3" and b = v "b" in
  let autos () =
    [
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ m1 ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m1 ] ~heads:[ m2 ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m2 ] ~heads:[ m3 ];
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ m3 ] ~heads:[ b ];
    ]
  in
  let plan =
    Partition.split ~sources:(Iset.singleton a) ~sinks:(Iset.singleton b)
      (autos ())
  in
  Alcotest.(check int) "chain collapses to 2 regions" 2
    (Array.length plan.Partition.regions);
  Alcotest.(check int) "one bridge for the whole chain" 1
    plan.Partition.nbridges;
  let conn =
    mk_conn ~config:Config.new_partitioned (autos ()) ~sources:[| a |]
      ~sinks:[| b |]
  in
  (* Capacity 2: both sends complete with no consumer attached. *)
  let far = Unix.gettimeofday () +. 2.0 in
  Alcotest.(check bool) "buffers first" true
    (Port.send_opt ~deadline:far (Connector.outport conn a) (Value.int 1) = Ok ());
  Alcotest.(check bool) "buffers second" true
    (Port.send_opt ~deadline:far (Connector.outport conn a) (Value.int 2) = Ok ());
  let got = List.init 2 (fun _ -> Value.to_int (Port.recv (Connector.inport conn b))) in
  Alcotest.(check (list int)) "order through queue" [ 1; 2 ] got

(* A modal non-fifo medium (the duplicator) is cut and behaves identically
   to the monolithic JIT run. *)
let partition_cuts_modal_medium () =
  let run config =
    let a = v "a" and t = v "t" and h = v "h" and b = v "b" in
    let autos =
      [
        Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ t ];
        duplicator t h;
        Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ h ] ~heads:[ b ];
      ]
    in
    let conn = mk_conn ~config autos ~sources:[| a |] ~sinks:[| b |] in
    let got = ref [] in
    Task.run_all
      [
        (fun () ->
          for i = 1 to 4 do
            Port.send (Connector.outport conn a) (Value.int i)
          done);
        (fun () ->
          for _ = 1 to 8 do
            got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
          done);
      ];
    (List.rev !got, Connector.nregions conn)
  in
  let jit, r1 = run Config.new_jit in
  let part, r2 = run Config.new_partitioned in
  Alcotest.(check (list int)) "each datum twice"
    [ 1; 1; 2; 2; 3; 3; 4; 4 ] part;
  Alcotest.(check (list int)) "matches jit" jit part;
  Alcotest.(check int) "jit monolithic" 1 r1;
  Alcotest.(check int) "modal medium cut" 2 r2

(* Fan-out relay rule: two boundary-headed fifos off the same replicator are
   both cut via relay regions (one per consumer), decoupling the consumers
   from each other. *)
let partition_relay_fanout () =
  let a = v "a" and x1 = v "x1" and x2 = v "x2" in
  let b1 = v "b1" and b2 = v "b2" in
  let autos () =
    [
      Preo_reo.Prim.build Preo_reo.Prim.Replicator ~tails:[ a ]
        ~heads:[ x1; x2 ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ x1 ] ~heads:[ b1 ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ x2 ] ~heads:[ b2 ];
    ]
  in
  let plan =
    Partition.split ~sources:(Iset.singleton a)
      ~sinks:(Iset.of_list [ b1; b2 ])
      (autos ())
  in
  Alcotest.(check int) "replicator + 2 relays" 3
    (Array.length plan.Partition.regions);
  Alcotest.(check int) "2 bridges" 2 plan.Partition.nbridges;
  let conn =
    mk_conn ~config:Config.new_partitioned (autos ()) ~sources:[| a |]
      ~sinks:[| b1; b2 |]
  in
  let streams = [| []; [] |] in
  Task.run_all
    [
      (fun () ->
        for i = 1 to 5 do
          Port.send (Connector.outport conn a) (Value.int i)
        done);
      (fun () ->
        for _ = 1 to 5 do
          streams.(0) <-
            Value.to_int (Port.recv (Connector.inport conn b1)) :: streams.(0)
        done);
      (fun () ->
        for _ = 1 to 5 do
          streams.(1) <-
            Value.to_int (Port.recv (Connector.inport conn b2)) :: streams.(1)
        done);
    ];
  Array.iteri
    (fun i s ->
      Alcotest.(check (list int))
        (Printf.sprintf "consumer %d full stream" i)
        [ 1; 2; 3; 4; 5 ] (List.rev s))
    streams

let partitioned_execution_matches () =
  (* Same data through a partitioned pipeline as through monolithic JIT. *)
  let run config =
    let a = v "a" and m1 = v "m1" and m2 = v "m2" and b = v "b" in
    let autos =
      [
        Preo_reo.Prim.build (Preo_reo.Prim.Transform "incr") ~tails:[ a ] ~heads:[ m1 ];
        Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m1 ] ~heads:[ m2 ];
        Preo_reo.Prim.build (Preo_reo.Prim.Transform "incr") ~tails:[ m2 ] ~heads:[ b ];
      ]
    in
    let conn = mk_conn ~config ~compile:false autos ~sources:[| a |] ~sinks:[| b |] in
    let got = ref [] in
    Task.run_all
      [
        (fun () ->
          for i = 1 to 20 do
            Port.send (Connector.outport conn a) (Value.int i)
          done);
        (fun () ->
          for _ = 1 to 20 do
            got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
          done);
      ];
    (List.rev !got, Connector.nregions conn)
  in
  let jit, r1 = run Config.new_jit in
  let part, r2 = run Config.new_partitioned in
  Alcotest.(check (list int)) "same values" jit part;
  Alcotest.(check (list int)) "incr twice" (List.init 20 (fun i -> i + 3)) part;
  Alcotest.(check int) "jit monolithic" 1 r1;
  Alcotest.(check int) "partitioned split" 2 r2

(* Steps agree between AOT and JIT for a deterministic protocol. *)
let steps_agree_across_composers () =
  let run config =
    let a = v "a" and m = v "m" and b = v "b" in
    let autos =
      [
        Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ m ];
        Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m ] ~heads:[ b ];
      ]
    in
    let conn = mk_conn ~config autos ~sources:[| a |] ~sinks:[| b |] in
    Task.run_all
      [
        (fun () ->
          for i = 1 to 10 do
            Port.send (Connector.outport conn a) (Value.int i)
          done);
        (fun () ->
          for _ = 1 to 10 do
            ignore (Port.recv (Connector.inport conn b))
          done);
      ];
    Connector.steps conn
  in
  let s1 = run Config.existing and s2 = run Config.new_jit in
  Alcotest.(check int) "same global steps" s1 s2;
  Alcotest.(check int) "3 steps per item" 30 s2

let gates_direct () =
  (* Drive a gated source by hand through Engine.try_step. *)
  let a = v "a" and b = v "b" in
  let auto = Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] in
  let slot = Atomic.make (Some (Value.int 5)) in
  let gate =
    {
      Engine.gate_ready = (fun () -> Atomic.get slot <> None);
      gate_peek = (fun () -> Option.get (Atomic.get slot));
      gate_commit = (fun _ -> Atomic.set slot None);
      gate_dump = (fun () -> "test-slot");
    }
  in
  let comp =
    Composer.jit ~sources:(Iset.singleton a) ~sinks:(Iset.singleton b) [ auto ]
  in
  let e = Engine.create ~gates:[ (a, gate) ] comp in
  let recvd = Task.spawn (fun () ->
      let x = Engine.recv e b in
      Alcotest.(check bool) "gate value" true (Value.equal x (Value.int 5)))
  in
  Task.join recvd;
  Alcotest.(check bool) "slot consumed" true (Atomic.get slot = None)


(* --- Engine regressions ----------------------------------------------------- *)

let try_step_after_poison_raises () =
  let a = v "a" and b = v "b" in
  let auto = Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ b ] in
  let comp =
    Composer.jit ~sources:(Iset.singleton a) ~sinks:(Iset.singleton b) [ auto ]
  in
  let e = Engine.create comp in
  Engine.poison e "gone";
  match Engine.try_step e with
  | exception Engine.Poisoned _ -> ()
  | _ -> Alcotest.fail "expected Poisoned"

(* debug_dump must release the engine lock even when the composer blows its
   expansion budget mid-dump; a second dump used to die on the wedged
   mutex. *)
let debug_dump_survives_budget () =
  let n = 18 in
  let a = v "a" in
  let xs = List.init n (fun i -> v (Printf.sprintf "x%d" i)) in
  let bs = List.init n (fun i -> v (Printf.sprintf "b%d" i)) in
  let autos =
    Preo_reo.Prim.build Preo_reo.Prim.Replicator ~tails:[ a ] ~heads:xs
    :: List.map2
         (fun x b ->
           Preo_reo.Prim.build Preo_reo.Prim.Lossy_sync ~tails:[ x ] ~heads:[ b ])
         xs bs
  in
  let comp =
    Composer.jit ~expansion_budget:10_000 ~sources:(Iset.singleton a)
      ~sinks:(Iset.of_list bs) autos
  in
  let e = Engine.create comp in
  let dump1 = Engine.debug_dump e in
  Alcotest.(check bool) "budget failure reported" true
    (let re = "expansion budget" in
     let rec contains i =
       i + String.length re <= String.length dump1
       && (String.sub dump1 i (String.length re) = re || contains (i + 1))
     in
     contains 0);
  (* The lock was released: a second dump must not raise Sys_error. *)
  ignore (Engine.debug_dump e)

(* Cyclic peer topology: partitioned token ring engines kick each other in a
   cycle; the rounds-bounded kick_all must terminate and the ring must make
   progress. *)
let kick_all_cyclic_ring () =
  match
    Preo_connectors.Driver.smoke ~config:Config.new_partitioned
      (Preo_connectors.Catalog.find "token_ring") ~n:6
  with
  | Ok steps -> Alcotest.(check bool) "ring progressed" true (steps > 0)
  | Error msg -> Alcotest.fail ("ring run failed: " ^ msg)

let firing_loop_counters () =
  (* Unoptimized labels: runtime solver calls happen, but memoization caps
     them; repeated states hit the candidate cache. *)
  let a = v "a" and m = v "m" and b = v "b" in
  let autos =
    [
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ m ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m ] ~heads:[ b ];
    ]
  in
  let config =
    Config.New
      { optimize_labels = false; cache_capacity = 0; expansion_budget = 2_000_000;
        partition = false; true_synchronous = false }
  in
  let conn = mk_conn ~config autos ~sources:[| a |] ~sinks:[| b |] in
  Task.run_all
    [
      (fun () ->
        for i = 1 to 50 do
          Port.send (Connector.outport conn a) (Value.int i)
        done);
      (fun () ->
        for _ = 1 to 50 do
          ignore (Port.recv (Connector.inport conn b))
        done);
    ];
  let st = Connector.stats conn in
  Alcotest.(check bool) "solver ran" true (st.Connector.st_solver_calls > 0);
  Alcotest.(check bool) "solver memoized" true
    (st.Connector.st_solver_calls < Connector.steps conn);
  Alcotest.(check bool) "candidate cache hit" true
    (st.Connector.st_cand_hits > 0);
  (* Partitioned pipeline: firings must have nudged the peer engine. *)
  let a = v "a" and m1 = v "m1" and m2 = v "m2" and b = v "b" in
  let autos =
    [
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ m1 ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ m1 ] ~heads:[ m2 ];
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ m2 ] ~heads:[ b ];
    ]
  in
  let conn =
    mk_conn ~config:Config.new_partitioned ~compile:false autos ~sources:[| a |]
      ~sinks:[| b |]
  in
  Task.run_all
    [
      (fun () ->
        for i = 1 to 20 do
          Port.send (Connector.outport conn a) (Value.int i)
        done);
      (fun () ->
        for _ = 1 to 20 do
          ignore (Port.recv (Connector.inport conn b))
        done);
    ];
  let st = Connector.stats conn in
  Alcotest.(check bool) "peer kicks counted" true (st.Connector.st_peer_kicks > 0)

(* --- Fifo<n> capacity and ordering ---------------------------------------- *)

let fifon_capacity_and_order () =
  List.iter
    (fun (name, config) ->
      let a = v "a" and b = v "b" in
      let auto = Preo_reo.Prim.build (Preo_reo.Prim.Fifo_n 3) ~tails:[ a ] ~heads:[ b ] in
      let conn = mk_conn ~config [ auto ] ~sources:[| a |] ~sinks:[| b |] in
      (* 3 sends complete without any receiver *)
      for i = 1 to 3 do
        Port.send (Connector.outport conn a) (Value.int i)
      done;
      Alcotest.(check int) (name ^ " buffered 3") 3 (Connector.steps conn);
      (* 4th send blocks until one receive drains a slot; run them together *)
      let got = ref [] in
      Task.run_all
        [
          (fun () ->
            for i = 4 to 10 do
              Port.send (Connector.outport conn a) (Value.int i)
            done);
          (fun () ->
            for _ = 1 to 10 do
              got := Value.to_int (Port.recv (Connector.inport conn b)) :: !got
            done);
        ];
      Alcotest.(check (list int)) (name ^ " fifo order")
        (List.init 10 (fun i -> i + 1))
        (List.rev !got))
    [ ("existing", Config.existing); ("jit", Config.new_jit) ]

let fifon_from_dsl () =
  let inst =
    Preo.instantiate
      (Preo.compile ~source:{|C(a;b) = Fifo<2>(a;b)|} ~name:"C")
      ~lengths:[]
  in
  let a = (Preo.outports inst "a").(0) in
  let b = (Preo.inports inst "b").(0) in
  Preo.Port.send a (Value.int 1);
  Preo.Port.send a (Value.int 2);
  Alcotest.(check int) "two buffered" 2 (Preo.steps inst);
  Alcotest.(check int) "first out" 1 (Value.to_int (Preo.Port.recv b));
  Alcotest.(check int) "second out" 2 (Value.to_int (Preo.Port.recv b));
  Preo.shutdown inst


(* --- lossy one-place buffers ------------------------------------------------ *)

let shift_lossy_keeps_newest () =
  let a = v "a" and b = v "b" in
  let conn =
    mk_conn ~config:Config.new_jit
      [ Preo_reo.Prim.build Preo_reo.Prim.Shift_lossy ~tails:[ a ] ~heads:[ b ] ]
      ~sources:[| a |] ~sinks:[| b |]
  in
  (* three sends complete with no receiver; only the newest survives *)
  for i = 1 to 3 do
    Port.send (Connector.outport conn a) (Value.int i)
  done;
  Alcotest.(check int) "3 accepts" 3 (Connector.steps conn);
  Alcotest.(check int) "newest wins" 3
    (Value.to_int (Port.recv (Connector.inport conn b)))

let overflow_lossy_keeps_oldest () =
  let a = v "a" and b = v "b" in
  let conn =
    mk_conn ~config:Config.new_jit
      [ Preo_reo.Prim.build Preo_reo.Prim.Overflow_lossy ~tails:[ a ] ~heads:[ b ] ]
      ~sources:[| a |] ~sinks:[| b |]
  in
  for i = 1 to 3 do
    Port.send (Connector.outport conn a) (Value.int i)
  done;
  Alcotest.(check int) "oldest wins" 1
    (Value.to_int (Port.recv (Connector.inport conn b)))

(* --- deadlines and stall diagnosis ------------------------------------------ *)

let recv_deadline_times_out () =
  (* a sync with no sender: a deadlined recv must expire with a stall
     report naming the pending vertex, not hang *)
  let conn, _, b = sync_conn Config.new_jit in
  let t0 = Unix.gettimeofday () in
  match Port.recv ~deadline:(t0 +. 0.1) (Connector.inport conn b) with
  | exception Engine.Timed_out r ->
    let waited = Unix.gettimeofday () -. t0 in
    Alcotest.(check bool) "within 2x the deadline" true (waited < 0.2);
    Alcotest.(check string) "op named" "recv" r.Engine.sr_op;
    Alcotest.(check bool) "vertex named" true
      (String.starts_with ~prefix:"b#" r.Engine.sr_vertex);
    Alcotest.(check bool) "pending vertices listed" true
      (List.exists
         (fun es ->
           List.exists
             (String.starts_with ~prefix:"b#")
             es.Engine.es_pending)
         r.Engine.sr_engines);
    Alcotest.(check bool) "stall counted" true
      ((Connector.stats conn).Connector.st_stalls > 0);
    Alcotest.(check bool) "report retrievable" true
      (Connector.last_stall conn <> None)
  | _ -> Alcotest.fail "expected Timed_out"

let send_deadline_times_out () =
  let conn, a, _ = sync_conn Config.new_jit in
  match Port.send ~deadline:(Unix.gettimeofday () +. 0.05)
          (Connector.outport conn a) Value.unit with
  | exception Engine.Timed_out r ->
    Alcotest.(check string) "op named" "send" r.Engine.sr_op
  | () -> Alcotest.fail "expected Timed_out"

let timed_out_op_is_withdrawn () =
  (* the expired recv must be withdrawn: a later send/recv pair still
     rendezvous correctly, and the value cannot leak into the dead slot *)
  let conn, a, b = sync_conn Config.new_jit in
  (match Port.recv_opt ~deadline:(Unix.gettimeofday () +. 0.05)
           (Connector.inport conn b) with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "expected a timeout");
  let sender =
    Task.spawn (fun () -> Port.send (Connector.outport conn a) (Value.int 9))
  in
  let got = Port.recv (Connector.inport conn b) in
  Task.join sender;
  Alcotest.(check int) "fresh recv gets the value" 9 (Value.to_int got)

let stall_watchdog_records () =
  (* the watchdog snapshots a blocked op that exceeds the threshold even
     when it is eventually released — no deadline involved *)
  let saved = !Config.stall_threshold in
  Config.stall_threshold := Some 0.02;
  Fun.protect
    ~finally:(fun () -> Config.stall_threshold := saved)
    (fun () ->
      let conn, a, b = sync_conn Config.new_jit in
      let receiver =
        Task.spawn (fun () ->
            ignore (Port.recv (Connector.inport conn b)))
      in
      Thread.delay 0.1;
      (* release the blocked recv; it completed fine, but stalled first *)
      Port.send (Connector.outport conn a) Value.unit;
      Task.join receiver;
      Alcotest.(check bool) "watchdog tripped" true
        ((Connector.stats conn).Connector.st_stalls > 0);
      match Connector.last_stall conn with
      | None -> Alcotest.fail "expected a recorded stall report"
      | Some r ->
        Alcotest.(check bool) "waited at least the threshold" true
          (r.Engine.sr_waited >= 0.02))

let cross_region_poison_propagates () =
  (* partitioned pipeline: poisoning one region's engine must release tasks
     blocked on the other region, poison message intact *)
  let a = v "a" and x = v "x" and y = v "y" and b = v "b" in
  let autos =
    [
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ a ] ~heads:[ x ];
      Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ x ] ~heads:[ y ];
      Preo_reo.Prim.build Preo_reo.Prim.Sync ~tails:[ y ] ~heads:[ b ];
    ]
  in
  let conn =
    mk_conn ~config:Config.new_partitioned ~compile:false autos ~sources:[| a |]
      ~sinks:[| b |]
  in
  Alcotest.(check bool) "actually partitioned" true (Connector.nregions conn > 1);
  let released = Atomic.make false in
  let blocked =
    Task.spawn (fun () ->
        match Port.recv (Connector.inport conn b) with
        | exception Engine.Poisoned msg ->
          Alcotest.(check string) "reason crossed the cut" "region down" msg;
          Atomic.set released true
        | _ -> Alcotest.fail "expected Poisoned")
  in
  Thread.delay 0.05;
  (* poison whichever engine comes first; propagation must reach the peer
     region that owns the blocked recv *)
  Engine.poison (List.hd (Connector.engines conn)) "region down";
  Task.join blocked;
  Alcotest.(check bool) "blocked task released" true (Atomic.get released)

let tests =
  [
    ("sync rendezvous (all configs)", `Quick, sync_rendezvous);
    ("fifo decouples", `Quick, fifo_decouples);
    ("fifo order (all configs)", `Quick, fifo_order_preserved);
    ("poison unblocks", `Quick, poison_unblocks);
    ("send after poison", `Quick, send_after_poison_raises);
    ("unknown boundary rejected", `Quick, unknown_boundary_vertex_rejected);
    ("compile failure on budget", `Quick, compile_failure_on_budget);
    ("bounded cache recomputes", `Quick, bounded_cache_recomputes);
    ("expansion blow-up poisons", `Quick, expansion_blowup_poisons);
    ("partition recognizes fifo1", `Quick, partition_recognizes_fifo);
    ("partition splits pipeline", `Quick, partition_splits_pipeline);
    ("partition keeps boundary fifo", `Quick, partition_boundary_fifo_not_cut);
    ("partition cuts fifo chain", `Quick, partition_fifo_chain_alternates);
    ("partition classifies shapes", `Quick, partition_classifies_shapes);
    ("partition cuts full fifo", `Quick, partition_cuts_full_fifo);
    ("partition collapses chain", `Quick, partition_collapses_chain);
    ("partition cuts modal medium", `Quick, partition_cuts_modal_medium);
    ("partition relay fan-out", `Quick, partition_relay_fanout);
    ("partitioned execution matches", `Quick, partitioned_execution_matches);
    ("steps agree across composers", `Quick, steps_agree_across_composers);
    ("gated source", `Quick, gates_direct);
    ("try_step after poison", `Quick, try_step_after_poison_raises);
    ("debug_dump survives budget", `Quick, debug_dump_survives_budget);
    ("kick_all cyclic ring", `Quick, kick_all_cyclic_ring);
    ("firing-loop counters", `Quick, firing_loop_counters);
    ("fifon capacity and order", `Quick, fifon_capacity_and_order);
    ("fifon from DSL", `Quick, fifon_from_dsl);
    ("shift-lossy keeps newest", `Quick, shift_lossy_keeps_newest);
    ("overflow-lossy keeps oldest", `Quick, overflow_lossy_keeps_oldest);
    ("recv deadline times out", `Quick, recv_deadline_times_out);
    ("send deadline times out", `Quick, send_deadline_times_out);
    ("timed-out op is withdrawn", `Quick, timed_out_op_is_withdrawn);
    ("stall watchdog records", `Quick, stall_watchdog_records);
    ("cross-region poison propagates", `Quick, cross_region_poison_propagates);
  ]
