(* Sharded multi-process fabric: shard frame codecs (roundtrip + fuzz),
   journal recovery, and end-to-end multi-process runs — clean streaming,
   worker crash with exactly-once replay, and retry-budget exhaustion
   escalating to structured poison. *)

module Wire = Preo_dist.Wire
module Shard = Preo_dist.Shard
module Connector = Preo_runtime.Connector
module Engine = Preo_runtime.Engine
module Shard_stats = Preo_runtime.Shard_stats

open Preo_support

let bcast_src =
  {|NBcastFifo(tl;hd[]) =
  Repl(tl;x[1..#hd])
  mult prod (i:1..#hd) Fifo1(x[i];hd[i])|}

(* --- codecs ------------------------------------------------------------------ *)

let roundtrip_shard m =
  let b = Buffer.create 64 in
  Wire.encode_shard b m;
  let m' = Wire.decode_shard (Buffer.to_bytes b) ~pos:(ref 0) in
  Alcotest.(check bool) "shard frame roundtrips" true (m = m')

let shard_codec () =
  List.iter roundtrip_shard
    [
      Wire.Sh_hello { token = "w1" };
      Wire.Sh_hello { token = "" };
      Wire.Sh_cfg (Value.list [ Value.str "x"; Value.int 3 ]);
      Wire.Sh_resume [];
      Wire.Sh_resume [ (0, 12); (3, 0); (7, max_int) ];
      Wire.Sh_batch { ch = 2; base = 100; items = [] };
      Wire.Sh_batch
        {
          ch = 0;
          base = 0;
          items = [ Value.int 1; Value.str "two"; Value.pair Value.unit (Value.float 3.0) ];
        };
      Wire.Sh_ack { ch = 5; upto = 99 };
      Wire.Sh_poison "worker w2 unreachable";
      Wire.Sh_close;
    ]

(* Decoding attacker-controlled bytes must either produce a message or fail
   with a "wire:"-prefixed [Failure] — never crash another way and never
   allocate absurdly. *)
let malformed_shard_frames () =
  let try_decode s =
    match Wire.decode_shard (Bytes.of_string s) ~pos:(ref 0) with
    | _ -> ()
    | exception Failure msg ->
      Alcotest.(check bool)
        (Printf.sprintf "error %S is wire-prefixed" msg)
        true
        (String.length msg >= 5 && String.sub msg 0 5 = "wire:")
  in
  (* truncations of a valid batch frame *)
  let b = Buffer.create 64 in
  Wire.encode_shard b
    (Wire.Sh_batch { ch = 1; base = 7; items = [ Value.int 42; Value.str "x" ] });
  let full = Buffer.contents b in
  for len = 0 to String.length full - 1 do
    try_decode (String.sub full 0 len)
  done;
  (* bogus tags and bodies *)
  try_decode "";
  try_decode "Q";
  try_decode "B\xff\xff\xff\xff\xff\xff\xff\xff";
  (* resume claiming far more entries than the bytes can hold *)
  try_decode ("M" ^ "\xff\xff\xff\x7f\x00\x00\x00\x00");
  (* batch claiming a huge item count *)
  try_decode
    ("B" ^ String.concat ""
       [ "\x01\x00\x00\x00\x00\x00\x00\x00";
         "\x00\x00\x00\x00\x00\x00\x00\x00";
         "\xff\xff\xff\x7f\x00\x00\x00\x00" ])

let qcheck_shard_fuzz =
  let open QCheck in
  [
    Test.make ~name:"random bytes never crash decode_shard" ~count:2000
      (string_of_size (Gen.int_range 0 64))
      (fun s ->
        match Wire.decode_shard (Bytes.of_string s) ~pos:(ref 0) with
        | _ -> true
        | exception Failure msg ->
          String.length msg >= 5 && String.sub msg 0 5 = "wire:");
  ]

(* --- journals ---------------------------------------------------------------- *)

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "preo_shard_%d_%d" (Unix.getpid ()) !n)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let journal_recovery () =
  let dir = temp_dir () in
  let path = Shard.journal_path ~dir ~ch:0 in
  let oc = open_out_bin path in
  List.iter
    (fun v ->
      output_string oc (Shard.journal_line v);
      output_char oc '\n')
    [ Value.int 1; Value.str "two"; Value.pair (Value.int 3) Value.unit ];
  (* torn tail: a partial line that never got its newline *)
  output_string oc "deadbe";
  close_out oc;
  Alcotest.(check int) "recovers complete lines" 3 (Shard.recover_journal path);
  let vs = Shard.read_journal path in
  Alcotest.(check int) "reads complete lines" 3 (List.length vs);
  Alcotest.(check bool) "first value" true (Value.equal (List.hd vs) (Value.int 1));
  (* after truncation the journal appends cleanly *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc (Shard.journal_line (Value.int 9));
  output_char oc '\n';
  close_out oc;
  Alcotest.(check int) "appends after recovery" 4 (List.length (Shard.read_journal path))

(* --- end-to-end helpers ------------------------------------------------------ *)

let wait_for ~timeout ~what f =
  let limit = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > limit then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

(* Placement for NBcastFifo: the Repl region stays on the host, the relay
   regions (one per hd branch) round-robin over the workers. *)
let round_robin nworkers r = if r = 0 then 0 else (((r - 1) mod nworkers) + 1)

(* hd indices owned by worker [w] under that placement *)
let hd_indices_of ~branches ~nworkers ~domains w =
  let regions = Shard.boundary_regions ~domains ~source:bcast_src ~name:"NBcastFifo"
      ~lengths:[ ("hd", branches) ] ()
  in
  let hd = List.assoc "hd" regions in
  List.filter
    (fun i -> round_robin nworkers hd.(i) = w)
    (List.init branches Fun.id)

let consume_workloads ~branches ~nworkers ~domains ~clients w =
  [ Shard.Consume
      { w_group = "hd"; w_indices = hd_indices_of ~branches ~nworkers ~domains w;
        w_clients = clients } ]

let journal_count dir ch =
  let path = Shard.journal_path ~dir ~ch in
  List.length (Shard.read_journal path)

let expected_ints n = List.init n Value.int

let check_journal_exact dir ch n =
  let vs = Shard.read_journal (Shard.journal_path ~dir ~ch) in
  Alcotest.(check int) (Printf.sprintf "journal ch%d length" ch) n (List.length vs);
  List.iteri
    (fun i v ->
      if not (Value.equal v (Value.int i)) then
        Alcotest.failf "journal ch%d[%d] = %s, wanted %d" ch i (Value.to_string v) i)
    vs

(* --- end-to-end: clean streaming over 2 workers ----------------------------- *)

let two_workers_stream () =
  let branches = 4 and nworkers = 2 and domains = 4 and n = 200 in
  let dir = temp_dir () in
  let b0 = Atomic.get Shard_stats.batches and i0 = Atomic.get Shard_stats.items in
  let h =
    Shard.host ~domains ~window:64 ~journal_dir:dir ~nworkers
      ~place:(round_robin nworkers)
      ~workloads:(consume_workloads ~branches ~nworkers ~domains ~clients:10)
      ~source:bcast_src ~name:"NBcastFifo"
      ~lengths:[ ("hd", branches) ]
      ()
  in
  let producer =
    Thread.create
      (fun () ->
        let p = Shard.outport_at h "tl" 0 in
        try
          for k = 0 to n - 1 do
            Preo_runtime.Port.send p (Value.int k)
          done
        with Engine.Poisoned _ -> ())
      ()
  in
  (* every branch's journal fills to exactly n *)
  wait_for ~timeout:30.0 ~what:"all journals full" (fun () ->
      List.for_all (fun ch -> journal_count dir ch >= n) (List.init branches Fun.id));
  Thread.join producer;
  let statuses = Shard.shutdown h in
  List.iter (fun ch -> check_journal_exact dir ch n) (List.init branches Fun.id);
  List.iter
    (fun (pid, st) ->
      match st with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c -> Alcotest.failf "worker %d exited %d" pid c
      | _ -> Alcotest.failf "worker %d killed" pid)
    statuses;
  (* batching actually coalesced: strictly more items than frames *)
  let batches = Atomic.get Shard_stats.batches - b0 in
  let items = Atomic.get Shard_stats.items - i0 in
  Alcotest.(check bool) "sent some batches" true (batches > 0);
  Alcotest.(check bool)
    (Printf.sprintf "batching coalesces (%d items in %d frames)" items batches)
    true
    (items >= batches)

(* Reference for the exactly-once claim: the same connector run entirely in
   process delivers the same multiset to every branch — the shard journals
   must match this. *)
let single_process_reference () =
  let branches = 2 and n = 120 in
  let c = Preo.compile ~source:bcast_src ~name:"NBcastFifo" in
  let inst = Preo.instantiate c ~lengths:[ ("hd", branches) ] in
  let got = Array.make branches [] in
  let consumers =
    List.init branches (fun i ->
        Thread.create
          (fun () ->
            let p = (Preo.inports inst "hd").(i) in
            try
              while true do
                got.(i) <- Preo.Port.recv p :: got.(i)
              done
            with Engine.Poisoned _ -> ())
          ())
  in
  let p = (Preo.outports inst "tl").(0) in
  for k = 0 to n - 1 do
    Preo.Port.send p (Value.int k)
  done;
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    Array.exists (fun l -> List.length l < n) got
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  Preo.shutdown inst;
  List.iter (fun t -> try Thread.join t with _ -> ()) consumers;
  Array.map List.rev got

(* --- end-to-end: worker killed mid-stream, exactly-once replay --------------- *)

let kill_and_replay () =
  let branches = 2 and nworkers = 1 and domains = 4 and n = 120 in
  let reference = single_process_reference () in
  Array.iteri
    (fun i l ->
      Alcotest.(check int) (Printf.sprintf "reference hd[%d] complete" i) n
        (List.length l))
    reference;
  let dir = temp_dir () in
  let r0 = Atomic.get Shard_stats.reconnects in
  let h =
    Shard.host ~domains ~window:8 ~journal_dir:dir ~retries:10 ~backoff:0.05
      ~nworkers
      ~place:(round_robin nworkers)
      ~workloads:(consume_workloads ~branches ~nworkers ~domains ~clients:5)
      ~source:bcast_src ~name:"NBcastFifo"
      ~lengths:[ ("hd", branches) ]
      ()
  in
  let producer =
    Thread.create
      (fun () ->
        let p = Shard.outport_at h "tl" 0 in
        try
          for k = 0 to n - 1 do
            Preo_runtime.Port.send p (Value.int k)
          done
        with Engine.Poisoned _ -> ())
      ()
  in
  (* let the stream get going, then kill the worker mid-flight *)
  wait_for ~timeout:20.0 ~what:"stream underway" (fun () ->
      List.exists (fun ch -> journal_count dir ch >= 20) (List.init branches Fun.id));
  Shard.kill_worker h 1;
  (* the manager respawns it; the replacement resumes from its journals and
     the stream completes with no loss and no duplication *)
  wait_for ~timeout:30.0 ~what:"journals complete after respawn" (fun () ->
      List.for_all (fun ch -> journal_count dir ch >= n) (List.init branches Fun.id));
  Thread.join producer;
  ignore (Shard.shutdown h);
  (* journals match the single-process run exactly: same values, same
     order, nothing lost, nothing doubled *)
  List.iter
    (fun ch ->
      let vs = Shard.read_journal (Shard.journal_path ~dir ~ch) in
      Alcotest.(check int) (Printf.sprintf "journal ch%d complete" ch) n
        (List.length vs);
      List.iteri
        (fun i v ->
          let want = List.nth reference.(0) i in
          if not (Value.equal v want) then
            Alcotest.failf "journal ch%d[%d] = %s, reference has %s" ch i
              (Value.to_string v) (Value.to_string want))
        vs)
    (List.init branches Fun.id);
  Alcotest.(check bool) "a reconnect was recorded" true
    (Atomic.get Shard_stats.reconnects > r0)

(* --- end-to-end: kill without journals, resume from the shipped floor -------- *)

(* The default configuration has no journal_dir: a respawned worker's only
   resume position for a consuming channel is the ack floor the host ships
   in the cfg frame. Before that floor existed, the replacement expected
   seq 0 while the host replayed from its ack watermark — a sequence-gap
   crash on every respawn, i.e. an endless respawn loop with the producer
   parked forever. This asserts the stream completes through a mid-stream
   kill with journals disabled. *)
let kill_no_journal_resumes () =
  let branches = 2 and nworkers = 1 and domains = 4 and n = 150 in
  let a0 = Atomic.get Shard_stats.acks in
  let r0 = Atomic.get Shard_stats.reconnects in
  let h =
    Shard.host ~domains ~window:8 ~retries:10 ~backoff:0.05 ~nworkers
      ~place:(round_robin nworkers)
      ~workloads:(consume_workloads ~branches ~nworkers ~domains ~clients:2)
      ~source:bcast_src ~name:"NBcastFifo"
      ~lengths:[ ("hd", branches) ]
      ()
  in
  let producer =
    Thread.create
      (fun () ->
        let p = Shard.outport_at h "tl" 0 in
        try
          for k = 0 to n - 1 do
            Preo_runtime.Port.send p (Value.int k)
          done
        with Engine.Poisoned _ -> ())
      ()
  in
  wait_for ~timeout:20.0 ~what:"stream underway" (fun () ->
      Atomic.get Shard_stats.acks > a0 + 20);
  Shard.kill_worker h 1;
  (* every value must eventually be consumed and acknowledged: the acked
     counter only advances on worker pops, so reaching branches * n proves
     the replacement resumed at the host's replay position *)
  wait_for ~timeout:30.0 ~what:"stream completes after journal-less respawn"
    (fun () -> Atomic.get Shard_stats.acks >= a0 + (branches * n));
  Thread.join producer;
  ignore (Shard.shutdown h);
  Alcotest.(check bool) "a reconnect was recorded" true
    (Atomic.get Shard_stats.reconnects > r0)

(* --- end-to-end: retry budget exhausted => structured poison, no hang -------- *)

let budget_exhausted_poisons () =
  let branches = 2 and nworkers = 1 and domains = 4 in
  let a0 = Atomic.get Shard_stats.acks in
  let h =
    Shard.host ~domains ~window:4 ~retries:0 ~backoff:0.05 ~nworkers
      ~place:(round_robin nworkers)
      ~workloads:(consume_workloads ~branches ~nworkers ~domains ~clients:1)
      ~source:bcast_src ~name:"NBcastFifo"
      ~lengths:[ ("hd", branches) ]
      ()
  in
  let poison_msg = ref None in
  let mu = Mutex.create () in
  let producer =
    Thread.create
      (fun () ->
        let p = Shard.outport_at h "tl" 0 in
        try
          let k = ref 0 in
          while true do
            Preo_runtime.Port.send p (Value.int !k);
            incr k
          done
        with Engine.Poisoned msg ->
          Mutex.lock mu;
          poison_msg := Some msg;
          Mutex.unlock mu)
      ()
  in
  (* wait for fresh acks — a full host -> worker -> ack roundtrip proves the
     session is established (the counters are process-wide and cumulative, so
     compare against the snapshot) — then kill the only worker; with a zero
     retry budget the manager escalates instead of respawning *)
  wait_for ~timeout:20.0 ~what:"stream underway" (fun () ->
      Atomic.get Shard_stats.acks > a0);
  Shard.kill_worker h 1;
  (* the parked producer must be released with the structured diagnosis —
     this is the no-hang guarantee *)
  wait_for ~timeout:20.0 ~what:"producer released by poison" (fun () ->
      Mutex.lock mu;
      let r = !poison_msg <> None in
      Mutex.unlock mu;
      r);
  Thread.join producer;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  (match !poison_msg with
   | Some msg ->
     Alcotest.(check bool)
       (Printf.sprintf "poison names the shard failure: %s" msg)
       true
       (contains msg "unreachable")
   | None -> Alcotest.fail "no poison recorded");
  ignore (Shard.shutdown h)

(* st_shard_* surfaces through Connector.stats *)
let stats_surface () =
  let before = Atomic.get Shard_stats.batches in
  Shard_stats.add_batch ~items:3;
  let c = Preo.compile ~source:bcast_src ~name:"NBcastFifo" in
  let inst = Preo.instantiate c ~lengths:[ ("hd", 2) ] in
  let st = Connector.stats (Preo.connector inst) in
  Preo.shutdown inst;
  Alcotest.(check bool) "stats reflect process-wide shard counters" true
    (st.Connector.st_shard_batches >= before + 1 && st.Connector.st_shard_items >= 3)

let tests =
  [
    ("shard frame roundtrips", `Quick, shard_codec);
    ("malformed shard frames rejected", `Quick, malformed_shard_frames);
    ("journal recovery truncates torn tail", `Quick, journal_recovery);
    ("shard stats surface in Connector.stats", `Quick, stats_surface);
    ("two workers stream with batching", `Slow, two_workers_stream);
    ("worker killed mid-stream: exactly-once replay", `Slow, kill_and_replay);
    ("worker killed without journals: resumes from shipped floor", `Slow,
     kill_no_journal_resumes);
    ("retry budget exhausted: structured poison, no hang", `Slow, budget_exhausted_poisons);
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~long:false) qcheck_shard_fuzz
