(* Timer edge cases: registrations in the past, cancellation, and identical
   deadlines. The timer thread is asynchronous, so "fires" is observed by
   polling a flag with a generous bound and "never fires" by a settle
   delay well past the registered time. *)

module Timer = Preo_runtime.Timer

let wait_for ?(timeout = 5.0) f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () -. t0 > timeout then false
    else begin
      Thread.delay 0.005;
      go ()
    end
  in
  go ()

let past_deadline_fires_immediately () =
  let fired = Atomic.make false in
  ignore (Timer.register (Unix.gettimeofday () -. 1.0) (fun () -> Atomic.set fired true));
  Alcotest.(check bool)
    "a deadline already in the past still fires (promptly)" true
    (wait_for (fun () -> Atomic.get fired))

let cancelled_registration_never_fires () =
  let fired = Atomic.make false in
  let h =
    Timer.register (Unix.gettimeofday () +. 0.15) (fun () -> Atomic.set fired true)
  in
  Timer.cancel h;
  (* Well past the registered time: the callback must not have run. *)
  Thread.delay 0.4;
  Alcotest.(check bool) "cancelled callback never ran" false (Atomic.get fired);
  (* Double-cancel and cancelling after the time passed are no-ops. *)
  Timer.cancel h

let identical_deadlines_both_fire () =
  let count = Atomic.make 0 in
  let at = Unix.gettimeofday () +. 0.05 in
  ignore (Timer.register at (fun () -> ignore (Atomic.fetch_and_add count 1)));
  ignore (Timer.register at (fun () -> ignore (Atomic.fetch_and_add count 1)));
  Alcotest.(check bool)
    "two registrations at the same instant both fire" true
    (wait_for (fun () -> Atomic.get count = 2));
  Alcotest.(check int) "exactly twice" 2 (Atomic.get count)

let cancel_one_of_two_keeps_the_other () =
  let fired = Atomic.make 0 in
  let at = Unix.gettimeofday () +. 0.05 in
  let h1 = Timer.register at (fun () -> ignore (Atomic.fetch_and_add fired 1)) in
  ignore (Timer.register at (fun () -> ignore (Atomic.fetch_and_add fired 10)));
  Timer.cancel h1;
  Alcotest.(check bool) "surviving registration fired" true
    (wait_for (fun () -> Atomic.get fired > 0));
  Thread.delay 0.1;
  Alcotest.(check int) "only the survivor fired" 10 (Atomic.get fired)

(* Shutdown joins the timer thread (no orphan), drops pending registrations,
   and leaves the module restartable: a later registration spins the thread
   back up and fires normally. *)
let shutdown_joins_and_restarts () =
  let dropped = Atomic.make false in
  ignore
    (Timer.register
       (Unix.gettimeofday () +. 0.15)
       (fun () -> Atomic.set dropped true));
  (* Returns only after the timer thread has been joined. *)
  Timer.shutdown ();
  (* Idempotent with no thread running. *)
  Timer.shutdown ();
  Thread.delay 0.3;
  Alcotest.(check bool) "pending registration dropped by shutdown" false
    (Atomic.get dropped);
  let fired = Atomic.make false in
  ignore
    (Timer.register
       (Unix.gettimeofday () +. 0.02)
       (fun () -> Atomic.set fired true));
  Alcotest.(check bool) "module restarts after shutdown" true
    (wait_for (fun () -> Atomic.get fired));
  Timer.shutdown ()

(* Hammer shutdown against concurrent registers: every registration must
   either be dropped by a shutdown cut or fire — none may be silently
   stranded on a dead thread. After the storm the module must still work. *)
let shutdown_register_storm () =
  let fired = Atomic.make 0 and registered = Atomic.make 0 in
  let stop = Atomic.make false in
  let registrar () =
    while not (Atomic.get stop) do
      ignore
        (Timer.register
           (Unix.gettimeofday () +. 0.001)
           (fun () -> ignore (Atomic.fetch_and_add fired 1)));
      ignore (Atomic.fetch_and_add registered 1);
      Thread.yield ()
    done
  in
  let shutter () =
    while not (Atomic.get stop) do
      Timer.shutdown ();
      Thread.yield ()
    done
  in
  let ts =
    List.map
      (fun f -> Thread.create f ())
      [ registrar; registrar; shutter; shutter ]
  in
  Thread.delay 0.5;
  Atomic.set stop true;
  List.iter Thread.join ts;
  Timer.shutdown ();
  Alcotest.(check bool) "storm registered plenty" true
    (Atomic.get registered > 100);
  (* Liveness after the storm: a fresh registration restarts the thread. *)
  let after = Atomic.make false in
  ignore
    (Timer.register
       (Unix.gettimeofday () +. 0.02)
       (fun () -> Atomic.set after true));
  Alcotest.(check bool) "timer still live after storm" true
    (wait_for (fun () -> Atomic.get after));
  Timer.shutdown ()

let tests =
  [
    ("past deadline fires immediately", `Quick, past_deadline_fires_immediately);
    ("cancelled registration never fires", `Quick, cancelled_registration_never_fires);
    ("identical deadlines both fire", `Quick, identical_deadlines_both_fire);
    ("cancel one of two keeps the other", `Quick, cancel_one_of_two_keeps_the_other);
    ("shutdown joins and restarts", `Quick, shutdown_joins_and_restarts);
    ("shutdown/register storm", `Quick, shutdown_register_storm);
  ]
