(* No-lost-wakeup stress: producers and consumers hammer small catalog
   connectors under the targeted-wakeup engine, mixing plain blocking
   operations with short random deadlines (which exercise the withdraw /
   re-park bookkeeping) and poison injection. A lost wakeup shows up as a
   hang: the plain (deadline-free) operations never time out, so they only
   complete if every firing wakes the right waiters. *)

open Preo

let stress_configs =
  [ ("jit", Config.new_jit); ("partitioned", Config.new_partitioned) ]

let with_family ?(n = 4) name f =
  let e = Preo_connectors.Catalog.find name in
  List.iter
    (fun (cname, config) ->
      let inst =
        instantiate ~config (Preo_connectors.Catalog.compiled e)
          ~lengths:(e.Preo_connectors.Catalog.lengths n)
      in
      Fun.protect ~finally:(fun () -> shutdown inst) (fun () -> f cname n inst))
    stress_configs

let protect_locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Receive, occasionally through a short deadline that may expire; on expiry
   the operation is withdrawn and we retry, so the datum is never lost. *)
let recv_retry rng p =
  let rec go () =
    if Preo_support.Rng.int rng 4 = 0 then
      match Port.recv_opt ~deadline:(Unix.gettimeofday () +. 0.002) p with
      | Ok v -> v
      | Error _ -> go ()
    else Port.recv p
  in
  go ()

let send_retry rng p v =
  let rec go () =
    if Preo_support.Rng.int rng 4 = 0 then
      match Port.send_opt ~deadline:(Unix.gettimeofday () +. 0.002) p v with
      | Ok () -> ()
      | Error _ -> go ()
    else Port.send p v
  in
  go ()

(* sequencer: a single round-robin receiver; receiving from the wrong port
   would block forever, so completing all rounds proves both the rotation and
   that timed-out grants are re-acquirable. *)
let sequencer_deadline_storm () =
  with_family "sequencer" (fun cname n inst ->
      let ins = inports inst "hd" in
      let rng = Preo_support.Rng.create 101 in
      let order = ref [] in
      Task.run_all
        [
          (fun () ->
            for _round = 1 to 25 do
              Array.iteri
                (fun i p ->
                  ignore (recv_retry rng p);
                  order := i :: !order)
                ins
            done);
        ];
      Alcotest.(check (list int))
        (cname ^ " rotation survives deadlines")
        (List.concat (List.init 25 (fun _ -> List.init n Fun.id)))
        (List.rev !order))

(* broadcast_fifo: one producer, [n] concurrent consumers, everyone mixing
   deadlines in. Every consumer must see the full stream in order. *)
let broadcast_deadline_storm () =
  with_family "broadcast_fifo" (fun cname n inst ->
      let out = (outports inst "tl").(0) in
      let ins = inports inst "hd" in
      let rounds = 50 in
      let streams = Array.make n [] in
      let lock = Mutex.create () in
      Task.run_all
        ((fun () ->
           let rng = Preo_support.Rng.create 7 in
           for r = 1 to rounds do
             send_retry rng out (Value.int r)
           done)
        :: List.init n (fun i -> fun () ->
               let rng = Preo_support.Rng.create (1000 + i) in
               for _ = 1 to rounds do
                 let x = Value.to_int (recv_retry rng ins.(i)) in
                 protect_locked lock (fun () -> streams.(i) <- x :: streams.(i))
               done));
      Array.iteri
        (fun i s ->
          Alcotest.(check (list int))
            (Printf.sprintf "%s stream %d in order" cname i)
            (List.init rounds (fun r -> r + 1))
            (List.rev s))
        streams)

(* token_ring (partitioned into one region per station): n station threads
   pass the token under random deadlines; order must still be a strict
   rotation starting at station 0. *)
let ring_deadline_storm () =
  with_family "token_ring" (fun cname n inst ->
      let outs = outports inst "tl" in
      let ins = inports inst "hd" in
      let rounds = 25 in
      let order = ref [] in
      let lock = Mutex.create () in
      Task.run_all
        (List.init n (fun i -> fun () ->
             let rng = Preo_support.Rng.create (77 + i) in
             for _ = 1 to rounds do
               ignore (recv_retry rng ins.(i));
               protect_locked lock (fun () -> order := i :: !order);
               send_retry rng outs.(i) Value.unit
             done));
      Alcotest.(check (list int))
        (cname ^ " ring order under deadlines")
        (List.concat (List.init rounds (fun _ -> List.init n Fun.id)))
        (List.rev !order))

(* Poison injection: consumers block forever mid-stream; closing the
   connector must wake and release every one of them (a lost broadcast
   wakeup would leave a consumer parked and the join would hang). *)
let poison_releases_everyone () =
  with_family "broadcast_fifo" (fun cname n inst ->
      let out = (outports inst "tl").(0) in
      let ins = inports inst "hd" in
      let received = Atomic.make 0 in
      let consumers =
        List.init n (fun i ->
            Task.spawn (fun () ->
                while true do
                  ignore (Port.recv ins.(i));
                  Atomic.incr received
                done))
      in
      let producer =
        Task.spawn (fun () ->
            try
              while true do
                Port.send out Value.unit
              done
            with Engine.Poisoned _ -> ())
      in
      (* Let the storm run, then pull the plug. *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      while Atomic.get received < n && Unix.gettimeofday () < deadline do
        Thread.delay 0.002
      done;
      Connector.close (connector inst);
      (* Every task must come back; Task.join swallows Poisoned. *)
      List.iter Task.join (producer :: consumers);
      Alcotest.(check bool)
        (cname ^ " all consumers made progress")
        true
        (Atomic.get received >= n);
      let st = Connector.stats (connector inst) in
      Alcotest.(check bool)
        (cname ^ " shutdown used broadcast wake")
        true
        (st.Connector.st_wakes_broadcast >= 1))

(* Deterministic counter check: a receiver parked long enough to be asleep in
   its condition wait must be woken by a *targeted* signal when the matching
   send fires — and an orderly close must not be counted as targeted. *)
let targeted_wake_counters () =
  List.iter
    (fun (cname, config) ->
      let a = Preo_automata.Vertex.fresh "a"
      and b = Preo_automata.Vertex.fresh "b" in
      let auto =
        Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ]
      in
      let conn =
        Connector.create ~config ~sources:[| a |] ~sinks:[| b |] [ auto ]
      in
      let got = ref 0 in
      let t =
        Task.spawn (fun () ->
            got := Value.to_int (Port.recv (Connector.inport conn b)))
      in
      Thread.delay 0.05;
      (* receiver is parked now *)
      Port.send (Connector.outport conn a) (Value.int 7);
      Task.join t;
      let st = Connector.stats conn in
      Alcotest.(check int) (cname ^ " value") 7 !got;
      Alcotest.(check bool) (cname ^ " receiver parked") true
        (st.Connector.st_cond_waits >= 1);
      Alcotest.(check bool) (cname ^ " targeted wake issued") true
        (st.Connector.st_wakes_targeted >= 1);
      Alcotest.(check int) (cname ^ " no broadcast during run") 0
        st.Connector.st_wakes_broadcast;
      Connector.close conn;
      let st = Connector.stats conn in
      Alcotest.(check bool) (cname ^ " close broadcasts") true
        (st.Connector.st_wakes_broadcast >= 1))
    stress_configs

(* The per-thread engine trace table is bounded by in-flight operations:
   entries appear while an operation is blocked and vanish when it
   completes, so a drained system dumps empty. *)
let trace_table_drains () =
  Engine.set_op_trace true;
  Fun.protect ~finally:(fun () -> Engine.set_op_trace false) (fun () ->
      let a = Preo_automata.Vertex.fresh "a"
      and b = Preo_automata.Vertex.fresh "b" in
      let auto =
        Preo_reo.Prim.build Preo_reo.Prim.Fifo1 ~tails:[ a ] ~heads:[ b ]
      in
      let conn =
        Connector.create ~config:Config.new_jit ~sources:[| a |] ~sinks:[| b |]
          [ auto ]
      in
      let t =
        Task.spawn (fun () -> ignore (Port.recv (Connector.inport conn b)))
      in
      Thread.delay 0.05;
      Alcotest.(check bool) "blocked op is traced" true
        (Engine.trace_dump () <> "");
      Port.send (Connector.outport conn a) Value.unit;
      Task.join t;
      Alcotest.(check string) "drained after completion" ""
        (Engine.trace_dump ());
      (* A blocked op released by close must also clear its entry. *)
      let t2 =
        Task.spawn (fun () -> ignore (Port.recv (Connector.inport conn b)))
      in
      Thread.delay 0.05;
      Connector.close conn;
      Task.join t2;
      Alcotest.(check string) "drained after close" "" (Engine.trace_dump ()))

let tests =
  [
    ("sequencer deadline storm", `Quick, sequencer_deadline_storm);
    ("broadcast deadline storm", `Quick, broadcast_deadline_storm);
    ("token-ring deadline storm", `Quick, ring_deadline_storm);
    ("poison releases everyone", `Quick, poison_releases_everyone);
    ("targeted wake counters", `Quick, targeted_wake_counters);
    ("trace table drains", `Quick, trace_table_drains);
  ]
