let () =
  Alcotest.run "preo"
    [
      ("support", Suite_support.tests);
      ("lru", Suite_lru.tests);
      ("automata", Suite_automata.tests);
      ("primitives", Suite_prim.tests);
      ("graph", Suite_graph.tests);
      ("lang", Suite_lang.tests);
      ("runtime", Suite_runtime.tests);
      ("connectors", Suite_connectors.tests);
      ("verify", Suite_verify.tests);
      ("bisim", Suite_bisim.tests);
      ("sim", Suite_sim.tests);
      ("prop", Suite_prop.tests);
      ("codegen", Suite_codegen.tests);
      ("dist", Suite_dist.tests);
      ("shard", Suite_shard.tests);
      ("solver-props", Suite_solver_props.tests);
      ("fuzz", Suite_fuzz.tests);
      ("stream", Suite_stream.tests);
      ("stress", Suite_stress.tests);
      ("wakeup", Suite_wakeup.tests);
      ("lockfree", Suite_lockfree.tests);
      ("facade", Suite_facade.tests);
      ("dsl-corners", Suite_dsl_corners.tests);
      ("random-networks", Suite_random.tests);
      ("npb", Suite_npb.tests);
      ("timer", Suite_timer.tests);
      ("elastic", Suite_elastic.tests);
      ("domains", Suite_domains.tests);
      ("obs", Suite_obs.tests);
      ("coloring", Suite_coloring.tests);
      ("compile", Suite_compile.tests);
    ]
